// In-simulation message bus with ZeroMQ-like semantics.
//
// The raw bus is *unreliable*: messages take latency proportional to their
// size on the control (Ethernet) network, can be dropped by fault injection,
// and are silently lost when the destination endpoint is disconnected.
// ReliableEndpoint layers unique message ids, acknowledgements, timeouts and
// resends on top — exactly the fault-tolerance story of paper §V-D.
//
// Thread safety: both classes are fully thread-safe — send / attach / detach
// and the stats accessors may race freely (the §V-B coordination loop runs
// off the training thread). Handlers are invoked on the simulator's driver
// thread with *no* transport lock held, so a handler may call back into the
// bus or endpoint without creating a lock cycle. Lock order (enforced by the
// elan::Mutex order detector): reliable_endpoint -> message_bus -> simulator.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sync.h"
#include "common/units.h"
#include "sim/simulator.h"
#include "topology/bandwidth.h"
#include "transport/message.h"

namespace elan::transport {

struct BusParams {
  /// Probability that any given (non-injected) message is lost in flight.
  double drop_probability = 0.0;
  /// Extra random latency jitter as a fraction of base latency.
  double jitter_fraction = 0.1;
  std::uint64_t seed = 7;
};

/// Statistics for tests and benches.
struct BusStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t to_unknown = 0;
};

/// Verdict of a fault filter for one message (see set_fault_filter).
struct FaultDecision {
  bool drop = false;
  /// Multiplies the base latency (>1 models a slow / congested link).
  double latency_factor = 1.0;
};

/// Admission-time fault hook: called for every message under the bus lock,
/// so implementations must not call back into the bus or simulator — they
/// may only consult their own (leaf-locked) state. src/fault/FaultInjector
/// is the canonical implementation (partitions, drop windows, slow links).
using FaultFilter = std::function<FaultDecision(const Message&, Seconds now)>;

class MessageBus {
 public:
  using Handler = std::function<void(const Message&)>;

  MessageBus(sim::Simulator& simulator, const topo::BandwidthModel& bandwidth,
             BusParams params = {});

  /// Registers (or re-registers after a disconnect) an endpoint.
  void attach(const std::string& name, Handler handler);

  /// Removes an endpoint; in-flight messages to it are lost (ZeroMQ peer
  /// restart). Safe to call for unknown names.
  void detach(const std::string& name);

  bool attached(const std::string& name) const {
    MutexLock lock(mu_);
    return handlers_.count(name) > 0;
  }

  /// Sends unreliably. Assigns a fresh id if msg.id == 0. Returns the id.
  MessageId send(Message msg);

  /// Reserves a globally unique message id without sending anything.
  MessageId allocate_id() {
    MutexLock lock(mu_);
    return next_id_++;
  }

  /// Latency the bus would charge for a message of `payload_bytes`.
  Seconds message_latency(Bytes payload_bytes) const;

  /// Snapshot of the counters (by value: the bus keeps mutating them).
  BusStats stats() const {
    MutexLock lock(mu_);
    return stats_;
  }

  sim::Simulator& simulator() { return sim_; }

  /// Fault injection: force-drop the next `n` messages sent from `from` (any
  /// destination). Used by fault-tolerance tests.
  void inject_drops(const std::string& from, int n) {
    MutexLock lock(mu_);
    forced_drops_[from] += n;
  }

  /// Installs (or clears, with nullptr) the fault filter consulted on every
  /// send. Filtered drops count into stats().dropped.
  void set_fault_filter(FaultFilter filter) {
    MutexLock lock(mu_);
    fault_filter_ = std::move(filter);
  }

 private:
  sim::Simulator& sim_;
  const topo::BandwidthModel& bandwidth_;
  const BusParams params_;

  mutable Mutex mu_{"message_bus"};
  Rng rng_ ELAN_GUARDED_BY(mu_);
  MessageId next_id_ ELAN_GUARDED_BY(mu_) = 1;
  std::map<std::string, Handler> handlers_ ELAN_GUARDED_BY(mu_);
  std::map<std::string, int> forced_drops_ ELAN_GUARDED_BY(mu_);
  FaultFilter fault_filter_ ELAN_GUARDED_BY(mu_);
  /// ZeroMQ guarantees per-connection ordering: jitter must not let a later
  /// message between the same (from, to) pair overtake an earlier one.
  std::map<std::pair<std::string, std::string>, Seconds> pair_clock_ ELAN_GUARDED_BY(mu_);
  BusStats stats_ ELAN_GUARDED_BY(mu_);

  void deliver(const Message& msg);
};

struct ReliableParams {
  Seconds ack_timeout = milliseconds(50.0);
  int max_retries = 100;  // ZeroMQ keeps trying to reconnect; bounded for sim hygiene
  /// Resend delays grow geometrically (ack_timeout * backoff_factor^n) up to
  /// max_backoff, so max_retries buys a long give-up horizon — long enough
  /// to span an AM crash + restart (§V-D) — without flooding the bus.
  double backoff_factor = 2.0;
  Seconds max_backoff = 5.0;
};

/// Reliable messaging endpoint: unique ids, ack, timeout-based resend and
/// receiver-side de-duplication. Thread-safe (see the file comment); the
/// application handler runs with no endpoint lock held.
class ReliableEndpoint {
 public:
  using Handler = std::function<void(const Message&)>;
  using Params = ReliableParams;

  ReliableEndpoint(MessageBus& bus, std::string name, Handler handler,
                   ReliableParams params = ReliableParams());
  ~ReliableEndpoint();

  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  const std::string& name() const { return name_; }

  /// Sends reliably: retries until acked or max_retries exceeded. The
  /// payload is wrapped into shared ownership here, once; retransmits reuse
  /// the same buffer.
  MessageId send(const std::string& to, const std::string& type, Payload payload = {});

  /// Detach from the bus (simulates process death); pending retries stop.
  void shutdown();

  /// Re-attach after shutdown (simulates restart). Duplicate suppression
  /// state is intentionally kept: message ids are globally unique.
  void restart();

  std::uint64_t retries() const {
    MutexLock lock(mu_);
    return retries_;
  }
  std::uint64_t gave_up() const {
    MutexLock lock(mu_);
    return gave_up_;
  }

 private:
  struct Pending {
    Message msg;
    int attempts = 0;
    sim::EventId timer = 0;
  };

  MessageBus& bus_;
  std::string name_;
  Handler handler_;
  Params params_;

  mutable Mutex mu_{"reliable_endpoint"};
  bool alive_ ELAN_GUARDED_BY(mu_) = false;
  std::map<MessageId, Pending> pending_ ELAN_GUARDED_BY(mu_);
  std::set<MessageId> seen_ ELAN_GUARDED_BY(mu_);  // receiver-side dedup
  std::uint64_t retries_ ELAN_GUARDED_BY(mu_) = 0;
  std::uint64_t gave_up_ ELAN_GUARDED_BY(mu_) = 0;
  // Guards callbacks that may fire after destruction.
  std::shared_ptr<std::atomic<bool>> alive_token_ =
      std::make_shared<std::atomic<bool>>(true);

  void on_raw(const Message& msg);
  void transmit(MessageId id) ELAN_REQUIRES(mu_);
  void arm_timer(MessageId id) ELAN_REQUIRES(mu_);
};

}  // namespace elan::transport
