// In-simulation message bus with ZeroMQ-like semantics.
//
// The raw bus is *unreliable*: messages take latency proportional to their
// size on the control (Ethernet) network, can be dropped by fault injection,
// and are silently lost when the destination endpoint is disconnected.
// ReliableEndpoint layers unique message ids, acknowledgements, timeouts and
// resends on top — exactly the fault-tolerance story of paper §V-D. Both are
// written against the RawTransport seam (transport/transport.h), so the same
// ReliableEndpoint (and everything above it) also runs over the socket
// backend.
//
// Thread safety: both classes are fully thread-safe — send / attach / detach
// and the stats accessors may race freely (the §V-B coordination loop runs
// off the training thread). Handlers are invoked on the simulator's driver
// thread with *no* transport lock held, so a handler may call back into the
// bus or endpoint without creating a lock cycle. Lock order (enforced by the
// elan::Mutex order detector): reliable_endpoint -> message_bus -> simulator.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/sync.h"
#include "common/units.h"
#include "sim/simulator.h"
#include "topology/bandwidth.h"
#include "transport/message.h"
#include "transport/transport.h"

namespace elan::transport {

struct BusParams {
  /// Probability that any given (non-injected) message is lost in flight.
  double drop_probability = 0.0;
  /// Extra random latency jitter as a fraction of base latency.
  double jitter_fraction = 0.1;
  std::uint64_t seed = 7;
};

/// Verdict of a fault filter for one message (see set_fault_filter).
struct FaultDecision {
  bool drop = false;
  /// Multiplies the base latency (>1 models a slow / congested link).
  double latency_factor = 1.0;
};

/// Admission-time fault hook: called for every message under the bus lock,
/// so implementations must not call back into the bus or simulator — they
/// may only consult their own (leaf-locked) state. src/fault/FaultInjector
/// is the canonical implementation (partitions, drop windows, slow links).
using FaultFilter = std::function<FaultDecision(const Message&, Seconds now)>;

class MessageBus final : public RawTransport {
 public:
  using Handler = RawTransport::Handler;

  MessageBus(sim::Simulator& simulator, const topo::BandwidthModel& bandwidth,
             BusParams params = {});

  void attach(const std::string& name, Handler handler) override;
  void detach(const std::string& name) override;

  bool attached(const std::string& name) const override {
    MutexLock lock(mu_);
    return handlers_.count(name) > 0;
  }

  MessageId send(Message msg) override;

  MessageId allocate_id() override {
    MutexLock lock(mu_);
    return next_id_++;
  }

  /// Timers run on the simulator's virtual clock (TimerId == sim::EventId).
  TimerId schedule_after(Seconds delay, std::function<void()> fn) override {
    return sim_.schedule(delay, std::move(fn));
  }
  void cancel_timer(TimerId id) override { sim_.cancel(id); }

  TransportOptions default_options() const override {
    return TransportOptions::sim_defaults();
  }

  /// Latency the bus would charge for a message of `payload_bytes`.
  Seconds message_latency(Bytes payload_bytes) const;

  BusStats stats() const override {
    MutexLock lock(mu_);
    return stats_;
  }

  sim::Simulator& simulator() { return sim_; }

  void inject_drops(const std::string& from, int n) override {
    MutexLock lock(mu_);
    forced_drops_[from] += n;
  }

  /// Installs (or clears, with nullptr) the fault filter consulted on every
  /// send. Filtered drops count into stats().dropped.
  void set_fault_filter(FaultFilter filter) {
    MutexLock lock(mu_);
    fault_filter_ = std::move(filter);
  }

 private:
  sim::Simulator& sim_;
  const topo::BandwidthModel& bandwidth_;
  const BusParams params_;

  mutable Mutex mu_{"message_bus"};
  Rng rng_ ELAN_GUARDED_BY(mu_);
  MessageId next_id_ ELAN_GUARDED_BY(mu_) = 1;
  std::map<std::string, Handler> handlers_ ELAN_GUARDED_BY(mu_);
  std::map<std::string, int> forced_drops_ ELAN_GUARDED_BY(mu_);
  FaultFilter fault_filter_ ELAN_GUARDED_BY(mu_);
  /// ZeroMQ guarantees per-connection ordering: jitter must not let a later
  /// message between the same (from, to) pair overtake an earlier one.
  std::map<std::pair<std::string, std::string>, Seconds> pair_clock_ ELAN_GUARDED_BY(mu_);
  BusStats stats_ ELAN_GUARDED_BY(mu_);

  void deliver(const Message& msg);
};

/// Historical name for the retry knobs, kept for sim-side call sites.
using ReliableParams = TransportOptions;

/// Reliable messaging endpoint: unique ids, ack, timeout-based resend and
/// receiver-side de-duplication, over any RawTransport backend. Thread-safe
/// (see the file comment); the application handler runs with no endpoint
/// lock held. When constructed without explicit options it adopts the
/// backend's default_options(), so the same construction works in virtual
/// and wall-clock time.
class ReliableEndpoint {
 public:
  using Handler = std::function<void(const Message&)>;
  using Params = TransportOptions;

  ReliableEndpoint(RawTransport& bus, std::string name, Handler handler,
                   std::optional<TransportOptions> params = std::nullopt);
  ~ReliableEndpoint();

  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  const std::string& name() const { return name_; }

  /// Sends reliably: retries until acked or max_retries exceeded. The
  /// payload is wrapped into shared ownership here, once; retransmits reuse
  /// the same buffer.
  MessageId send(const std::string& to, const std::string& type, Payload payload = {});

  /// Detach from the transport (simulates process death); pending retries stop.
  void shutdown();

  /// Re-attach after shutdown (simulates restart). Duplicate suppression
  /// state is intentionally kept: ids are unique per sending transport, so
  /// (sender, id) stays a stable dedup key across our own restarts.
  void restart();

  std::uint64_t retries() const {
    MutexLock lock(mu_);
    return retries_;
  }
  std::uint64_t gave_up() const {
    MutexLock lock(mu_);
    return gave_up_;
  }

  const TransportOptions& options() const { return params_; }

 private:
  struct Pending {
    Message msg;
    int attempts = 0;
    TimerId timer = 0;
  };

  RawTransport& bus_;
  std::string name_;
  Handler handler_;
  Params params_;

  mutable Mutex mu_{"reliable_endpoint"};
  bool alive_ ELAN_GUARDED_BY(mu_) = false;
  std::map<MessageId, Pending> pending_ ELAN_GUARDED_BY(mu_);
  /// Receiver-side dedup, keyed (sender, id): ids are only unique per
  /// sending transport instance, and with the socket backend every process
  /// allocates its own.
  std::set<std::pair<std::string, MessageId>> seen_ ELAN_GUARDED_BY(mu_);
  std::uint64_t retries_ ELAN_GUARDED_BY(mu_) = 0;
  std::uint64_t gave_up_ ELAN_GUARDED_BY(mu_) = 0;
  // Guards callbacks that may fire after destruction.
  std::shared_ptr<std::atomic<bool>> alive_token_ =
      std::make_shared<std::atomic<bool>>(true);

  void on_raw(const Message& msg);
  void transmit(MessageId id) ELAN_REQUIRES(mu_);
  void arm_timer(MessageId id) ELAN_REQUIRES(mu_);
};

}  // namespace elan::transport
