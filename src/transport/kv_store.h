// Simulated distributed key-value store (etcd-like).
//
// The application master persists its state machine here after every
// transition (paper §V-D: "we save the state machine on distributed storage
// ... we deploy Elan in a Kubernetes cluster, so we save it on etcd").
//
// Data survives AM crashes by construction (the store lives outside the AM).
// Operation latency models a Raft quorum round trip; callers receive results
// through the simulator so timing is accounted for.
//
// Thread-safe: puts and gets may race from any thread (like a real etcd
// client); each operation is individually atomic. Lock order:
// kv_store -> simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace elan::transport {

struct KvParams {
  Seconds put_latency = milliseconds(2.0);   // quorum write
  Seconds get_latency = milliseconds(0.8);   // leader read
};

class KvStore {
 public:
  explicit KvStore(sim::Simulator& simulator, KvParams params = {})
      : sim_(simulator), params_(params) {}

  /// Asynchronous durable put; `done` fires after the quorum latency.
  void put(const std::string& key, std::vector<std::uint8_t> value,
           std::function<void()> done = nullptr);

  /// Asynchronous get; `done` receives nullopt if the key is absent.
  void get(const std::string& key,
           std::function<void(std::optional<std::vector<std::uint8_t>>)> done) const;

  /// Synchronous accessors for recovery paths and tests (timing handled by
  /// the caller, e.g. folded into a restart delay).
  std::optional<std::vector<std::uint8_t>> get_now(const std::string& key) const;
  void put_now(const std::string& key, std::vector<std::uint8_t> value);
  bool erase(const std::string& key);

  /// Keys with the given prefix, sorted.
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  std::uint64_t puts() const {
    MutexLock lock(mu_);
    return puts_;
  }
  std::uint64_t gets() const {
    MutexLock lock(mu_);
    return gets_;
  }
  const KvParams& params() const { return params_; }

 private:
  sim::Simulator& sim_;
  const KvParams params_;

  mutable Mutex mu_{"kv_store"};
  std::map<std::string, std::vector<std::uint8_t>> data_ ELAN_GUARDED_BY(mu_);
  mutable std::uint64_t puts_ ELAN_GUARDED_BY(mu_) = 0;
  mutable std::uint64_t gets_ ELAN_GUARDED_BY(mu_) = 0;
};

}  // namespace elan::transport
