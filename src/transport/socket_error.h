// Typed error codes for the socket transport backend.
//
// Every failure the wire format or the connection machinery can produce maps
// to exactly one value here, and to_string is an exhaustive switch (the
// KickCAT AL-status-table idiom): a new enumerator without a string is a
// compile warning, and tests assert the table has no "?" holes. Framing
// errors (kBadMagic .. kShortRead) poison only the connection they arrived
// on — the transport records them (flight kind kSockError + a per-code
// counter) and keeps serving every other link.
#pragma once

#include <cstdint>

namespace elan::transport {

enum class SocketError : std::uint8_t {
  kOk = 0,

  // Frame decode errors (produced by FrameDecoder, transport/frame.h).
  kBadMagic = 1,           // header does not start with kFrameMagic
  kBadVersion = 2,         // wire version this build does not speak
  kMalformedHeader = 3,    // reserved bits set / lengths inconsistent
  kOversizedFrame = 4,     // name or payload length above FrameLimits
  kBodyLengthMismatch = 5, // body_len != from+to+type+payload lengths
  kTruncatedHeader = 6,    // EOF inside the fixed header
  kShortRead = 7,          // EOF inside the body (mid-frame disconnect)

  // Connection lifecycle errors (produced by SocketTransport).
  kConnReset = 8,      // ECONNRESET / EPIPE from a peer
  kPeerUnknown = 9,    // destination endpoint has no bound socket
  kConnectFailed = 10, // connect(2) failed (also ECONNREFUSED)
  kBindFailed = 11,    // bind(2) failed for a listening endpoint
  kListenFailed = 12,  // listen(2) failed
  kAcceptFailed = 13,  // accept4(2) failed
  kSendFailed = 14,    // write/writev failed with a non-retryable errno
  kAddressTooLong = 15,// endpoint name does not fit sockaddr_un::sun_path
  kEpollFailed = 16,   // epoll_create/ctl/wait failed
  kSocketClosed = 17,  // operation on a transport already shut down
};

/// Exhaustive code -> string table; never returns nullptr.
const char* to_string(SocketError error);

/// Total number of enumerators (bounds the exhaustiveness test).
inline constexpr int kSocketErrorCount = 18;

}  // namespace elan::transport
