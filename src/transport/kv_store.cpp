#include "transport/kv_store.h"

namespace elan::transport {

void KvStore::put(const std::string& key, std::vector<std::uint8_t> value,
                  std::function<void()> done) {
  put_now(key, std::move(value));
  if (done) sim_.schedule(params_.put_latency, std::move(done));
}

void KvStore::get(const std::string& key,
                  std::function<void(std::optional<std::vector<std::uint8_t>>)> done) const {
  auto value = get_now(key);
  sim_.schedule(params_.get_latency, [done = std::move(done), value = std::move(value)]() {
    done(value);
  });
}

std::optional<std::vector<std::uint8_t>> KvStore::get_now(const std::string& key) const {
  MutexLock lock(mu_);
  ++gets_;
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

void KvStore::put_now(const std::string& key, std::vector<std::uint8_t> value) {
  MutexLock lock(mu_);
  ++puts_;
  data_[key] = std::move(value);
}

bool KvStore::erase(const std::string& key) {
  MutexLock lock(mu_);
  return data_.erase(key) > 0;
}

std::vector<std::string> KvStore::keys_with_prefix(const std::string& prefix) const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  for (auto it = data_.lower_bound(prefix); it != data_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

}  // namespace elan::transport
