#include "transport/bus.h"

#include <algorithm>

#include "common/log.h"
#include "obs/flight.h"

namespace elan::transport {

MessageBus::MessageBus(sim::Simulator& simulator, const topo::BandwidthModel& bandwidth,
                       BusParams params)
    : sim_(simulator), bandwidth_(bandwidth), params_(params), rng_(params.seed) {}

void MessageBus::attach(const std::string& name, Handler handler) {
  require(static_cast<bool>(handler), "MessageBus::attach: empty handler");
  MutexLock lock(mu_);
  handlers_[name] = std::move(handler);
}

void MessageBus::detach(const std::string& name) {
  MutexLock lock(mu_);
  handlers_.erase(name);
}

Seconds MessageBus::message_latency(Bytes payload_bytes) const {
  return bandwidth_.control_transfer_time(payload_bytes + 128);  // + framing overhead
}

MessageId MessageBus::send(Message msg) {
  // The whole admission path — id assignment, drop decision, per-pair FIFO
  // clock, scheduling — happens under the bus lock: two racing sends on the
  // same (from, to) stream must enter the simulator queue in the same order
  // their delivery times were assigned, or a tie in deliver_at would let the
  // later message overtake on the simulator's insertion-order tiebreak.
  MutexLock lock(mu_);
  if (msg.id == 0) msg.id = next_id_++;
  ++stats_.sent;

  auto forced = forced_drops_.find(msg.from);
  const bool force_drop = forced != forced_drops_.end() && forced->second > 0;
  if (force_drop) --forced->second;

  // Scripted faults (partitions, drop windows, slow links) see the message
  // before the random loss model does, so their behaviour is seed-exact.
  FaultDecision fault;
  if (fault_filter_) fault = fault_filter_(msg, sim_.now());

  if (force_drop || fault.drop || rng_.chance(params_.drop_probability)) {
    ++stats_.dropped;
    // reason: 0 = forced, 1 = scripted fault, 2 = random loss model.
    obs::FlightRecorder::record(obs::FlightEventKind::kMsgDrop,
                                msg.from.c_str(), msg.type.c_str(), msg.id,
                                force_drop ? 0 : (fault.drop ? 1 : 2));
    log_trace() << "bus: dropped " << msg.type << " " << msg.from << "->" << msg.to;
    return msg.id;
  }

  Seconds latency = message_latency(msg.payload.size());
  latency *= 1.0 + rng_.uniform(0.0, params_.jitter_fraction);
  latency *= std::max(1.0, fault.latency_factor);

  // Per-connection FIFO (ZeroMQ semantics): never deliver before an earlier
  // message on the same (from, to) stream.
  Seconds deliver_at = sim_.now() + latency;
  auto& stream_clock = pair_clock_[{msg.from, msg.to}];
  deliver_at = std::max(deliver_at, stream_clock);
  stream_clock = deliver_at;

  const MessageId id = msg.id;
  obs::FlightRecorder::record(obs::FlightEventKind::kMsgSend, msg.from.c_str(),
                              msg.type.c_str(), id);
  sim_.schedule_at(deliver_at,
                   [this, msg = std::move(msg)]() { deliver(msg); });
  return id;
}

void MessageBus::deliver(const Message& msg) {
  Handler handler;
  {
    MutexLock lock(mu_);
    auto it = handlers_.find(msg.to);
    if (it == handlers_.end()) {
      ++stats_.to_unknown;
      obs::FlightRecorder::record(obs::FlightEventKind::kMsgToUnknown,
                                  msg.to.c_str(), msg.type.c_str(), msg.id);
      log_trace() << "bus: no endpoint " << msg.to << " for " << msg.type;
      return;
    }
    ++stats_.delivered;
    obs::FlightRecorder::record(obs::FlightEventKind::kMsgDeliver,
                                msg.to.c_str(), msg.type.c_str(), msg.id);
    // Copy the handler out: the target may detach (or re-attach a new
    // handler) concurrently, and the handler itself may call back into the
    // bus — it must run with no bus lock held.
    handler = it->second;
  }
  handler(msg);
}

ReliableEndpoint::ReliableEndpoint(RawTransport& bus, std::string name, Handler handler,
                                   std::optional<TransportOptions> params)
    : bus_(bus),
      name_(std::move(name)),
      handler_(std::move(handler)),
      params_(params.value_or(bus.default_options())) {
  require(static_cast<bool>(handler_), "ReliableEndpoint: empty handler");
  restart();
}

ReliableEndpoint::~ReliableEndpoint() {
  alive_token_->store(false);
  shutdown();
}

void ReliableEndpoint::shutdown() {
  std::vector<TimerId> timers;
  {
    MutexLock lock(mu_);
    if (!alive_) return;
    alive_ = false;
    for (auto& [id, p] : pending_) {
      if (p.timer != 0) timers.push_back(p.timer);
    }
    pending_.clear();
  }
  // Outside the endpoint lock: detach locks the transport, cancel locks its
  // timer source; neither needs our state anymore.
  bus_.detach(name_);
  for (TimerId t : timers) bus_.cancel_timer(t);
}

void ReliableEndpoint::restart() {
  {
    MutexLock lock(mu_);
    if (alive_) return;
    alive_ = true;
  }
  bus_.attach(name_, [this](const Message& msg) { on_raw(msg); });
}

MessageId ReliableEndpoint::send(const std::string& to, const std::string& type,
                                 Payload payload) {
  MutexLock lock(mu_);
  require(alive_, "ReliableEndpoint::send on dead endpoint " + name_);
  Message msg;
  msg.from = name_;
  msg.to = to;
  msg.type = type;
  msg.payload = std::move(payload);
  // Reserve the id without transmitting yet so Pending can record it first.
  msg.id = bus_.allocate_id();
  Pending p;
  p.msg = std::move(msg);
  const MessageId id = p.msg.id;
  pending_.emplace(id, std::move(p));
  transmit(id);
  return id;
}

void ReliableEndpoint::transmit(MessageId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  ++it->second.attempts;
  if (it->second.attempts > 1) {
    ++retries_;
    obs::FlightRecorder::record(obs::FlightEventKind::kMsgRetry, name_.c_str(),
                                it->second.msg.type.c_str(), id,
                                static_cast<std::uint64_t>(it->second.attempts));
  }
  bus_.send(it->second.msg);
  arm_timer(id);
}

void ReliableEndpoint::arm_timer(MessageId id) {
  auto token = alive_token_;
  auto& p = pending_.at(id);
  // Bounded exponential backoff: attempt n waits ack_timeout * factor^(n-1),
  // capped at max_backoff. A crashed peer restarting minutes later is still
  // reached, while a healthy one costs only the base timeout.
  Seconds wait = params_.ack_timeout;
  for (int i = 1; i < p.attempts && wait < params_.max_backoff; ++i) {
    wait *= params_.backoff_factor;
  }
  wait = std::min(wait, std::max(params_.ack_timeout, params_.max_backoff));
  p.timer = bus_.schedule_after(wait, [this, token, id]() {
    if (!token->load()) return;
    MutexLock lock(mu_);
    auto it = pending_.find(id);
    if (it == pending_.end() || !alive_) return;
    it->second.timer = 0;
    if (it->second.attempts >= params_.max_retries) {
      ++gave_up_;
      obs::FlightRecorder::record(obs::FlightEventKind::kMsgGaveUp,
                                  name_.c_str(), it->second.msg.type.c_str(),
                                  id, static_cast<std::uint64_t>(it->second.attempts));
      log_warn() << name_ << ": giving up on message " << id << " to " << it->second.msg.to;
      pending_.erase(it);
      return;
    }
    transmit(id);
  });
}

void ReliableEndpoint::on_raw(const Message& msg) {
  if (msg.is_ack) {
    TimerId timer = 0;
    {
      MutexLock lock(mu_);
      auto it = pending_.find(msg.ack_of);
      if (it != pending_.end()) {
        timer = it->second.timer;
        pending_.erase(it);
      }
    }
    if (timer != 0) bus_.cancel_timer(timer);
    return;
  }

  // Ack everything, including duplicates (the first ack may have been lost).
  Message ack;
  ack.from = name_;
  ack.to = msg.from;
  ack.type = "ack";
  ack.is_ack = true;
  ack.ack_of = msg.id;
  bus_.send(std::move(ack));

  bool fresh = false;
  {
    MutexLock lock(mu_);
    fresh = seen_.insert({msg.from, msg.id}).second;
  }
  if (!fresh) {
    log_trace() << name_ << ": duplicate message " << msg.id << " suppressed";
    return;
  }
  // The application handler runs with no endpoint lock held: it typically
  // locks its own state (e.g. the application master) and then sends replies
  // back through this endpoint — holding mu_ here would close a lock cycle.
  handler_(msg);
}

}  // namespace elan::transport
