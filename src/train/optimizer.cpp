#include "train/optimizer.h"

namespace elan::train {

SgdOptimizer::SgdOptimizer(const ModelSpec& model)
    : parameters_("parameters", ModelSpec::scaled_blob_bytes(model.param_bytes())),
      momentum_("momentum", ModelSpec::scaled_blob_bytes(model.optimizer_bytes())),
      nominal_param_bytes_(model.param_bytes()),
      nominal_momentum_bytes_(model.optimizer_bytes()) {
  // Deterministic initialisation (same "random init" on every worker, as a
  // broadcast from rank 0 would produce).
  parameters_.fill_pattern(0x5eed0000 ^ model.parameters);
  momentum_.fill_pattern(0);
}

void SgdOptimizer::mix(Blob& blob, std::uint64_t seed) {
  std::uint64_t x = seed ^ (blob.quick_fingerprint() * 0x9e3779b97f4a7c15ULL);
  for (auto& b : blob.mutable_bytes()) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    b = static_cast<std::uint8_t>(b ^ ((x * 0x2545f4914f6cdd1dULL) >> 56));
  }
}

void SgdOptimizer::step(std::uint64_t gradient_seed) {
  // momentum = f(momentum, grad); parameters = g(parameters, momentum).
  mix(momentum_, gradient_seed);
  mix(parameters_, momentum_.quick_fingerprint());
  ++steps_;
}

std::uint64_t SgdOptimizer::state_checksum() const {
  return parameters_.checksum() * 31 + momentum_.checksum();
}

void SgdOptimizer::load_from(const SgdOptimizer& other) {
  parameters_.copy_from(other.parameters_);
  momentum_.copy_from(other.momentum_);
  steps_ = other.steps_;
}

}  // namespace elan::train
