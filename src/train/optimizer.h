// SGD-with-momentum optimizer over state blobs.
//
// The simulator does not do real gradient math; what matters for elasticity
// is that (a) the optimizer owns GPU-resident state of realistic size (one
// momentum buffer per parameter buffer) and (b) parameter state evolves
// *deterministically from its history*, so a replica that skipped state
// replication can never accidentally match a correct one. Each step folds
// the iteration seed and the previous contents into both blobs with a cheap
// mixing function; two replicas agree after an adjustment iff replication
// copied the bytes.
#pragma once

#include <cstdint>

#include "common/blob.h"
#include "train/models.h"

namespace elan::train {

class SgdOptimizer {
 public:
  explicit SgdOptimizer(const ModelSpec& model);

  /// Applies one update: mixes the gradient seed (derived from the iteration
  /// and data consumed) into momentum, then momentum into parameters.
  void step(std::uint64_t gradient_seed);

  const Blob& parameters() const { return parameters_; }
  const Blob& momentum() const { return momentum_; }
  Blob& mutable_parameters() { return parameters_; }
  Blob& mutable_momentum() { return momentum_; }

  /// Nominal (real-model) byte sizes used for transfer-time accounting.
  Bytes nominal_parameter_bytes() const { return nominal_param_bytes_; }
  Bytes nominal_optimizer_bytes() const { return nominal_momentum_bytes_; }

  std::uint64_t steps_taken() const { return steps_; }

  /// Combined checksum of parameters and momentum: the replica-consistency
  /// fingerprint tests assert on.
  std::uint64_t state_checksum() const;

  /// Overwrites this optimizer's state from another (state replication).
  void load_from(const SgdOptimizer& other);

 private:
  Blob parameters_;
  Blob momentum_;
  Bytes nominal_param_bytes_;
  Bytes nominal_momentum_bytes_;
  std::uint64_t steps_ = 0;

  static void mix(Blob& blob, std::uint64_t seed);
};

}  // namespace elan::train
