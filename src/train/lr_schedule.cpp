#include "train/lr_schedule.h"

#include <algorithm>

namespace elan::train {

StepSchedule::StepSchedule(double base_lr, std::vector<std::uint64_t> milestone_iterations,
                           double decay)
    : base_lr_(base_lr), milestones_(std::move(milestone_iterations)), decay_(decay) {
  require(base_lr_ > 0.0, "StepSchedule: base_lr must be positive");
  require(decay_ > 0.0 && decay_ <= 1.0, "StepSchedule: decay must be in (0, 1]");
  require(std::is_sorted(milestones_.begin(), milestones_.end()),
          "StepSchedule: milestones must be sorted");
}

StepSchedule& StepSchedule::with_warmup(std::uint64_t warmup_iterations,
                                        double start_fraction) {
  require(start_fraction > 0.0 && start_fraction <= 1.0,
          "with_warmup: start fraction must be in (0, 1]");
  require(milestones_.empty() || warmup_iterations <= milestones_.front(),
          "with_warmup: warmup must end before the first decay");
  warmup_iterations_ = warmup_iterations;
  warmup_start_fraction_ = start_fraction;
  return *this;
}

double StepSchedule::lr(std::uint64_t iteration) const {
  if (iteration < warmup_iterations_) {
    const double frac =
        static_cast<double>(iteration) / static_cast<double>(warmup_iterations_);
    return base_lr_ * (warmup_start_fraction_ + frac * (1.0 - warmup_start_fraction_));
  }
  double lr = base_lr_;
  for (auto m : milestones_) {
    if (iteration >= m) lr *= decay_;
  }
  return lr;
}

void LrController::apply_scaling(double k, std::uint64_t t0, std::uint64_t ramp_iterations) {
  require(k > 0.0, "apply_scaling: k must be positive");
  // Settle any previous ramp at its target before composing a new one; the
  // coordination mechanism spaces adjustments further apart than T in
  // practice, so this is a conservative simplification.
  settled_scale_ *= pending_factor_;
  pending_factor_ = k;
  ramp_start_ = t0;
  ramp_length_ = ramp_iterations;
  if (k == 1.0 || ramp_iterations == 0) {
    settled_scale_ *= pending_factor_;
    pending_factor_ = 1.0;
  }
}

bool LrController::ramp_active(std::uint64_t t) const {
  return pending_factor_ != 1.0 && t < ramp_start_ + ramp_length_;
}

double LrController::lr(std::uint64_t t) const {
  const double base = base_.lr(t);
  const double lr0 = base * settled_scale_;
  if (pending_factor_ == 1.0) return lr0;
  const double lr_target = lr0 * pending_factor_;
  if (t >= ramp_start_ + ramp_length_) return lr_target;
  if (t < ramp_start_) return lr0;
  // Eq. 3: lr_t = lr_0 + (t - T0)/T * (lr_T - lr_0).
  const double frac =
      static_cast<double>(t - ramp_start_) / static_cast<double>(ramp_length_);
  return lr0 + frac * (lr_target - lr0);
}

}  // namespace elan::train
