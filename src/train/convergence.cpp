#include "train/convergence.h"

#include <algorithm>
#include <cmath>

namespace elan::train {

int ConvergenceResult::epochs_to_accuracy(double target) const {
  for (std::size_t e = 0; e < accuracy.size(); ++e) {
    if (accuracy[e] >= target) return static_cast<int>(e);
  }
  return -1;
}

double ConvergenceModel::ceiling(int total_batch, double lr, double scale_ratio) const {
  require(total_batch > 0 && lr > 0.0, "ceiling: bad operating point");
  require(scale_ratio > 0.0, "ceiling: bad scale ratio");
  const auto& p = params_;
  const double nu = (lr / total_batch) / (p.base_lr / p.base_batch);
  double c = p.max_accuracy - p.noise_ceiling_coef * std::sqrt(nu);

  // Linear-scaling ratio: 1 when the LR tracks the batch size.
  const double r = scale_ratio;
  if (r < 1.0) {
    c -= p.under_scale_coef * std::log2(1.0 / r);
  } else if (r > 1.0) {
    const double l = std::log2(r);
    c -= p.over_scale_coef * l * l;
  }

  if (total_batch > p.critical_batch) {
    const double l = std::log2(static_cast<double>(total_batch) / p.critical_batch);
    c -= p.large_batch_coef * l * l;
  }
  return std::max(0.0, c);
}

ConvergenceResult ConvergenceModel::simulate(const std::vector<EpochPlan>& plan) const {
  require(!plan.empty(), "simulate: empty plan");
  const auto& p = params_;
  ConvergenceResult result;
  result.accuracy.reserve(plan.size());
  double acc = 0.0;

  for (const auto& e : plan) {
    require(e.total_batch > 0 && e.lr > 0.0, "simulate: bad epoch plan");

    if (e.lr_jump > 1.0) {
      const double jump = std::log2(e.lr_jump);
      if (e.ramped) {
        // Progressive linear scaling (Eq. 3): the transient scales with the
        // ramp's share of the epoch — negligible for the paper's T=100.
        const double iters_per_epoch =
            static_cast<double>(p.dataset_samples) / e.total_batch;
        const double frac = std::min(1.0, e.ramp_iterations / std::max(1.0, iters_per_epoch));
        acc -= p.sharp_jump_coef * jump * frac * 0.5;
      } else {
        acc -= p.sharp_jump_coef * jump;
        if (e.lr_jump >= p.divergence_jump) result.diverged = true;
      }
      acc = std::max(0.0, acc);
    }

    if (result.diverged) {
      // A diverged run hovers near chance level.
      acc = std::min(acc, 0.05);
      result.accuracy.push_back(acc);
      continue;
    }

    const double c = ceiling(e.total_batch, e.lr, e.scale_ratio);
    acc += p.rate_per_epoch * (c - acc);
    acc = std::clamp(acc, 0.0, 1.0);
    result.accuracy.push_back(acc);
  }
  return result;
}

std::vector<EpochPlan> ConvergenceModel::reference_recipe(
    int total_batch, int epochs, const std::vector<int>& decay_epochs) const {
  const auto& p = params_;
  std::vector<EpochPlan> plan;
  plan.reserve(static_cast<std::size_t>(epochs));
  const double lr0 = p.base_lr * static_cast<double>(total_batch) / p.base_batch;
  for (int e = 0; e < epochs; ++e) {
    double lr = lr0;
    for (int d : decay_epochs) {
      if (e >= d) lr *= 0.1;
    }
    EpochPlan ep;
    ep.total_batch = total_batch;
    ep.lr = lr;
    plan.push_back(ep);
  }
  return plan;
}

double ConvergenceModel::final_accuracy(int total_batch, double lr0, int epochs,
                                        const std::vector<int>& decay_epochs,
                                        double decay) const {
  const double ratio =
      lr0 / (params_.base_lr * static_cast<double>(total_batch) / params_.base_batch);
  std::vector<EpochPlan> plan;
  plan.reserve(static_cast<std::size_t>(epochs));
  for (int e = 0; e < epochs; ++e) {
    double lr = lr0;
    for (int d : decay_epochs) {
      if (e >= d) lr *= decay;
    }
    EpochPlan ep;
    ep.total_batch = total_batch;
    ep.lr = lr;
    ep.scale_ratio = ratio;
    plan.push_back(ep);
  }
  return simulate(plan).final_accuracy();
}

ConvergenceModel ConvergenceModel::resnet50_imagenet() {
  ConvergenceParams p;
  p.base_lr = 0.1;
  p.base_batch = 256;
  p.max_accuracy = 0.7669;  // yields 75.89% with the reference recipe
  p.noise_ceiling_coef = 0.08;
  p.rate_per_epoch = 0.18;
  p.critical_batch = 2048;
  p.dataset_samples = data::imagenet().num_samples;
  return ConvergenceModel(p);
}

ConvergenceModel ConvergenceModel::mobilenet_cifar100() {
  ConvergenceParams p;
  p.base_lr = 0.05;
  p.base_batch = 128;
  p.max_accuracy = 0.7510;
  p.noise_ceiling_coef = 0.095;
  p.under_scale_coef = 0.018;
  p.large_batch_coef = 0.008;
  p.critical_batch = 2048;
  p.rate_per_epoch = 0.22;
  p.dataset_samples = data::cifar100().num_samples;
  return ConvergenceModel(p);
}

}  // namespace elan::train
