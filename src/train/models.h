// Model zoo (paper Table I plus ResNet-50, which the elastic-training
// evaluation in §VI-B uses).
//
// Each spec carries the quantities the simulator needs: parameter count
// (gradient/state sizes), compute cost per sample, per-GPU batch limits and
// compute-efficiency shape. Real blobs allocated for a model are scaled down
// from the nominal size (so a 64-worker simulation fits in laptop RAM) while
// all *timing* uses nominal sizes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "data/dataset.h"

namespace elan::train {

enum class ModelKind { kResNet50, kVgg19, kMobileNetV2, kSeq2Seq, kTransformer };

struct ModelSpec {
  ModelKind kind{};
  std::string name;
  std::string type;    // CNN / RNN / Attention
  std::string domain;  // CV / NLP
  std::uint64_t parameters = 0;
  double flops_per_sample = 0;  // forward FLOPs; backward costs ~2x forward
  data::Dataset dataset;
  int max_batch_per_gpu = 0;  // GPU memory limit
  /// Batch size at which a single GPU reaches half of its peak efficiency;
  /// smaller values mean the model saturates the GPU with small batches.
  double half_efficiency_batch = 8.0;
  /// Fixed per-iteration host-side overhead (kernel launches, Python glue).
  Seconds iteration_overhead = milliseconds(8.0);
  /// Activation/workspace memory model: a fixed part (cuDNN workspaces,
  /// fragmentation reserve) plus a per-sample activation cost. Together with
  /// the parameter/optimizer state this determines what fits on an 11 GiB
  /// device — the physical basis of max_batch_per_gpu, of the scheduler's
  /// min_res rule, and of the context volume Litz swaps over PCIe.
  Bytes workspace_fixed = 512_MiB;
  Bytes workspace_per_sample = 0;

  /// Activations/workspace resident for a given per-GPU batch.
  Bytes workspace_bytes(int per_gpu_batch) const {
    return workspace_fixed + workspace_per_sample * static_cast<Bytes>(per_gpu_batch);
  }
  /// Baseline converged top-1 accuracy with the reference recipe.
  double reference_accuracy = 0.0;

  /// fp32 parameter bytes == gradient bytes == allreduce payload.
  Bytes param_bytes() const { return parameters * 4; }
  /// Momentum adds one more fp32 buffer per parameter.
  Bytes optimizer_bytes() const { return parameters * 4; }
  /// GPU-resident training state (parameters + optimizer).
  Bytes gpu_state_bytes() const { return param_bytes() + optimizer_bytes(); }

  /// Storage actually allocated for a nominal `n`-byte blob in simulation.
  static Bytes scaled_blob_bytes(Bytes n);
};

/// Table I zoo + ResNet-50.
ModelSpec resnet50();
ModelSpec vgg19();
ModelSpec mobilenet_v2();
ModelSpec seq2seq();
ModelSpec transformer();

/// MobileNet-v2 retargeted to Cifar100 (Figure 5 experiment).
ModelSpec mobilenet_v2_cifar();

/// All five models used in the scaling-analysis figures (3, 4, 14, 15, 16).
std::vector<ModelSpec> model_zoo();

const ModelSpec& model_by_kind(ModelKind kind);
ModelSpec model_by_name(const std::string& name);

}  // namespace elan::train
