#include "train/models.h"

#include <algorithm>

#include "common/error.h"

namespace elan::train {

Bytes ModelSpec::scaled_blob_bytes(Bytes n) {
  // 1/16384 of nominal with a 2 KiB floor keeps 64-worker simulations cheap
  // while still moving enough real bytes for checksum-based verification.
  return std::max<Bytes>(2_KiB, n >> 14);
}

ModelSpec resnet50() {
  ModelSpec m;
  m.kind = ModelKind::kResNet50;
  m.name = "ResNet-50";
  m.type = "CNN";
  m.domain = "CV";
  m.parameters = 25'557'032;
  m.flops_per_sample = 3.9e9;
  m.dataset = data::imagenet();
  m.max_batch_per_gpu = 128;
  m.half_efficiency_batch = 10.0;
  m.iteration_overhead = milliseconds(9.0);
  m.reference_accuracy = 0.7589;  // paper §VI-B: 75.89% with 512 (16)
  m.workspace_per_sample = 70_MiB;
  return m;
}

ModelSpec vgg19() {
  ModelSpec m;
  m.kind = ModelKind::kVgg19;
  m.name = "VGG-19";
  m.type = "CNN";
  m.domain = "CV";
  m.parameters = 143'667'240;  // Table I: 143M
  m.flops_per_sample = 19.6e9;
  m.dataset = data::imagenet();
  m.max_batch_per_gpu = 64;
  m.half_efficiency_batch = 4.0;  // huge kernels saturate the GPU quickly
  m.iteration_overhead = milliseconds(7.0);
  m.reference_accuracy = 0.7248;
  m.workspace_per_sample = 140_MiB;
  return m;
}

ModelSpec mobilenet_v2() {
  ModelSpec m;
  m.kind = ModelKind::kMobileNetV2;
  m.name = "MobileNet-v2";
  m.type = "CNN";
  m.domain = "CV";
  m.parameters = 3'504'872;  // Table I: 3M
  m.flops_per_sample = 0.33e9;
  m.dataset = data::imagenet();
  m.max_batch_per_gpu = 256;
  m.half_efficiency_batch = 48.0;  // small kernels need large batches
  m.iteration_overhead = milliseconds(11.0);
  m.reference_accuracy = 0.7186;
  m.workspace_per_sample = 36_MiB;
  return m;
}

ModelSpec mobilenet_v2_cifar() {
  ModelSpec m = mobilenet_v2();
  m.name = "MobileNet-v2/Cifar100";
  m.dataset = data::cifar100();
  m.flops_per_sample = 0.09e9;      // 32x32 inputs
  m.workspace_per_sample = 1_MiB;   // tiny activations at 32x32
  m.max_batch_per_gpu = 1024;
  m.reference_accuracy = 0.7410;  // Figure 5 baseline region
  return m;
}

ModelSpec seq2seq() {
  ModelSpec m;
  m.kind = ModelKind::kSeq2Seq;
  m.name = "Seq2Seq";
  m.type = "RNN";
  m.domain = "NLP";
  m.parameters = 45'000'000;  // Table I: 45M
  m.flops_per_sample = 2.4e9;
  m.dataset = data::tatoeba();
  m.max_batch_per_gpu = 256;
  m.half_efficiency_batch = 24.0;  // sequential cells limit utilisation
  m.iteration_overhead = milliseconds(18.0);  // per-timestep launches
  m.reference_accuracy = 0.0;  // BLEU-style metric, unused in accuracy figs
  m.workspace_per_sample = 36_MiB;
  return m;
}

ModelSpec transformer() {
  ModelSpec m;
  m.kind = ModelKind::kTransformer;
  m.name = "Transformer";
  m.type = "Attention";
  m.domain = "NLP";
  m.parameters = 47'000'000;  // Table I: 47M
  m.flops_per_sample = 3.2e9;
  m.dataset = data::wmt16();
  m.max_batch_per_gpu = 64;
  m.half_efficiency_batch = 16.0;
  m.iteration_overhead = milliseconds(10.0);
  m.reference_accuracy = 0.0;
  m.workspace_fixed = 1_GiB;         // attention caches and fused-op workspaces
  m.workspace_per_sample = 144_MiB;  // long-sequence attention activations
  return m;
}

std::vector<ModelSpec> model_zoo() {
  return {resnet50(), vgg19(), mobilenet_v2(), seq2seq(), transformer()};
}

const ModelSpec& model_by_kind(ModelKind kind) {
  static const std::vector<ModelSpec> zoo = model_zoo();
  for (const auto& m : zoo) {
    if (m.kind == kind) return m;
  }
  throw NotFound("model kind");
}

ModelSpec model_by_name(const std::string& name) {
  for (const auto& m : model_zoo()) {
    if (m.name == name) return m;
  }
  if (name == "MobileNet-v2/Cifar100") return mobilenet_v2_cifar();
  throw NotFound("model: " + name);
}

}  // namespace elan::train
