// Learning-rate schedules.
//
// StepSchedule is the standard step-decay base schedule. LrController owns
// the *runtime* learning rate of an elastic job: it applies the base schedule
// and, on top of it, the hybrid scaling mechanism's progressive linear
// scaling rule (paper Eq. 2-3 / Algorithm 1 GETLEARNINGRATE): when the total
// batch size is scaled by k, the target LR is scaled by k and approached
// linearly over T iterations starting at T0.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"

namespace elan::train {

/// lr(iteration) = base_lr * decay^(#milestones passed), optionally preceded
/// by a linear warmup from warmup_start_fraction * base_lr over the first
/// warmup_iterations (the gradual-warmup scheme of large-batch training,
/// which §VII cites as the manual cousin of progressive linear scaling).
class StepSchedule {
 public:
  StepSchedule(double base_lr, std::vector<std::uint64_t> milestone_iterations,
               double decay = 0.1);

  /// Adds a linear warmup phase. Returns *this for chaining.
  StepSchedule& with_warmup(std::uint64_t warmup_iterations,
                            double start_fraction = 0.1);

  double lr(std::uint64_t iteration) const;
  double base_lr() const { return base_lr_; }
  std::uint64_t warmup_iterations() const { return warmup_iterations_; }

 private:
  double base_lr_;
  std::vector<std::uint64_t> milestones_;
  double decay_;
  std::uint64_t warmup_iterations_ = 0;
  double warmup_start_fraction_ = 0.1;
};

/// Runtime LR controller with progressive linear scaling.
class LrController {
 public:
  explicit LrController(StepSchedule base) : base_(std::move(base)) {}

  /// Applies a batch-size scaling factor k at iteration t0: the LR target
  /// becomes k times the current scale, approached linearly over
  /// `ramp_iterations` iterations (paper Eq. 3). Multiple adjustments
  /// compose (scales multiply).
  void apply_scaling(double k, std::uint64_t t0, std::uint64_t ramp_iterations);

  /// The learning rate at iteration t (GETLEARNINGRATE in Algorithm 1).
  double lr(std::uint64_t t) const;

  /// The cumulative batch-scale factor applied so far.
  double scale() const { return settled_scale_ * pending_factor_; }

  bool ramp_active(std::uint64_t t) const;

 private:
  StepSchedule base_;
  double settled_scale_ = 1.0;   // product of fully-ramped factors
  double pending_factor_ = 1.0;  // factor currently ramping (1 = none)
  std::uint64_t ramp_start_ = 0;
  std::uint64_t ramp_length_ = 0;
};

}  // namespace elan::train
