// Analytic training-throughput model.
//
// Prices one data-parallel training iteration:
//
//   t_compute(b) = t_overhead + (3 * flops_per_sample / peak_flops)
//                  * (b + h)^2 / b
//
// The (b+h)^2/b form is linear in the per-GPU batch b for large b and
// superlinear as b shrinks below h (kernels fall under occupancy, fixed
// per-layer costs dominate) — this is what makes strong scaling *decline*
// past its optimum rather than merely saturate.
//
//   t_comm(N) = ring allreduce of the gradient payload over the group's
//               bottleneck link: 2(N-1) alpha + 2(N-1)/N * S / B_chunk,
//               where B_chunk accounts for the per-step chunk size S/N and
//               multi-node rings run at a measured efficiency factor
//               (PCIe-host staging without GPUDirect RDMA roughly halves
//               achievable bus bandwidth).
//
//   t_iter = t_compute + max(0, t_comm - overlap * t_backward)
//
// This reproduces the paper's §III observations: weak scaling is near-linear
// with slope growing in per-worker batch; strong scaling rises then falls
// with the optimum shifting right as the total batch grows (Figs 3, 4, 17) —
// calibrated so ResNet-50's optimal worker counts are 16/32/64 for total
// batch sizes 512/1024/2048 (Fig 17).
#pragma once

#include <vector>

#include "comm/group.h"
#include "common/units.h"
#include "topology/topology.h"
#include "train/models.h"

namespace elan::train {

struct GpuSpec {
  /// Achievable fp32 FLOPs on DL kernels (GeForce 1080Ti-class).
  double peak_flops = 4.5e12;
};

struct ThroughputParams {
  GpuSpec gpu;
  /// Fraction of backward-pass time usable to hide allreduce traffic
  /// (bucketed gradient overlap a la PyTorch DDP).
  double comm_overlap = 1.0;
  /// Achieved fraction of link bandwidth for rings spanning multiple nodes
  /// (hosts without GPUDirect RDMA stage cross-node traffic through CPU
  /// memory).
  double multi_node_ring_efficiency = 0.44;
};

class ThroughputModel {
 public:
  ThroughputModel(const topo::Topology& topology, const topo::BandwidthModel& bandwidth,
                  ThroughputParams params = {});

  const topo::Topology& topology() const { return *topology_; }
  const topo::BandwidthModel& bandwidth() const { return *bandwidth_; }
  const ThroughputParams& params() const { return params_; }

  /// Compute time of one iteration on one GPU with per-GPU batch `b`.
  Seconds compute_time(const ModelSpec& model, int per_worker_batch) const;

  /// Allreduce time of the model's gradients over `workers` compactly placed
  /// workers (worker i on GPU i).
  Seconds allreduce_time(const ModelSpec& model, int workers) const;

  /// Allreduce time over an explicit GPU placement: the ring's bottleneck
  /// link and node span come from the actual member set, so fragmented
  /// placements genuinely communicate slower.
  Seconds allreduce_time_on(const ModelSpec& model,
                            const std::vector<topo::GpuId>& members) const;

  /// Full iteration time for `workers` workers and a given per-worker batch.
  Seconds iteration_time(const ModelSpec& model, int workers, int per_worker_batch) const;
  Seconds iteration_time_on(const ModelSpec& model, const std::vector<topo::GpuId>& members,
                            int per_worker_batch) const;

  /// Samples/second for a total batch size split evenly over `workers`.
  /// total_batch need not be divisible by workers; the straggler holds the
  /// iteration (ceil division).
  double throughput(const ModelSpec& model, int workers, int total_batch) const;
  double throughput_on(const ModelSpec& model, const std::vector<topo::GpuId>& members,
                       int total_batch) const;

  /// Whether `total_batch` fits in GPU memory on `workers` workers.
  bool fits(const ModelSpec& model, int workers, int total_batch) const;

  /// The optimal worker count under strong scaling with this total batch
  /// size: argmax over power-of-two worker counts (1..cluster size) of
  /// throughput, restricted to feasible (memory-fitting) configurations.
  /// This is the N_opt oracle used by hybrid scaling (Algorithm 1, line 10).
  int optimal_workers(const ModelSpec& model, int total_batch) const;

  /// Power-of-two worker counts from 1 to the cluster size.
  std::vector<int> candidate_worker_counts() const;

 private:
  const topo::Topology* topology_;
  const topo::BandwidthModel* bandwidth_;
  ThroughputParams params_;
};

}  // namespace elan::train
