// Empirical convergence model.
//
// Produces top-1 accuracy trajectories for training recipes that vary the
// total batch size and learning rate over time — enough to reproduce the
// paper's algorithm-side results (Fig 5, Fig 18, Fig 19, Table IV).
//
// The model is built around the SGD noise scale nu = (lr / TBS) normalised by
// the reference recipe (lr_base / TBS_base):
//
//  * Per-phase accuracy approaches a ceiling geometrically (rate per epoch).
//  * The ceiling rises as the noise scale decays:
//        ceiling = A_max - c_noise * sqrt(nu)
//    which yields the classic staircase at step-decay epochs.
//  * Linear-scaling ratio r = lr / (lr_base * TBS/TBS_base):
//      - r < 1 (batch grew, LR did not — "Default" in Fig 5): optimization is
//        starved; ceiling -= c_under * log2(1/r). Monotone decline in log TBS.
//      - r > 1 (over-scaled LR): ceiling -= c_over * log2(r)^2, and r beyond
//        a divergence threshold collapses training.
//  * Even with correct scaling, very large total batches lose accuracy
//    (open problem per the paper): ceiling -= c_large * log2(TBS/TBS_crit)^2
//    above TBS_crit. This is why the hybrid curve in Fig 5 dips at 2^12.
//  * A sharp (un-ramped) LR increase by factor k costs a transient
//    c_sharp * log2(k) of accuracy and risks divergence for k >= 4; the
//    progressive linear scaling rule (Eq. 2-3) ramps over T iterations and
//    shrinks the transient by T's fraction of the epoch.
//
// Calibrated so that ResNet-50/ImageNet with the reference recipe reaches
// 75.89% and the paper's elastic 512-2048 recipe reaches ~75.87% (Fig 18).
#pragma once

#include <vector>

#include "common/error.h"
#include "train/models.h"

namespace elan::train {

/// One epoch of a training recipe.
struct EpochPlan {
  int total_batch = 0;
  double lr = 0.0;
  /// Ratio of this epoch's LR to the properly linear-scaled LR at the same
  /// point of the schedule: 1 when the recipe scales LR with the batch size,
  /// TBS_ref/TBS when the LR was left at its small-batch value ("Default" in
  /// Fig 5). Step decays do not change the ratio.
  double scale_ratio = 1.0;
  /// When the LR jumped *upward* entering this epoch: the jump factor and
  /// whether the progressive linear scaling ramp was applied.
  double lr_jump = 1.0;
  bool ramped = false;
  int ramp_iterations = 0;  // T in Eq. 3 (only meaningful when ramped)
};

struct ConvergenceParams {
  double base_lr = 0.1;    // reference LR at the reference batch size
  int base_batch = 256;    // reference total batch size
  double max_accuracy = 0.767;  // asymptote A_max
  double noise_ceiling_coef = 0.08;   // c_noise
  double under_scale_coef = 0.018;    // c_under (Fig 5 "Default" slope)
  double over_scale_coef = 0.01;      // c_over
  double large_batch_coef = 0.006;    // c_large (hybrid's residual penalty)
  int critical_batch = 2048;          // TBS_crit
  double sharp_jump_coef = 0.05;      // c_sharp transient per log2 jump
  double divergence_jump = 4.0;       // un-ramped jump factor that diverges
  double rate_per_epoch = 0.18;       // geometric approach rate
  std::uint64_t dataset_samples = 1'281'167;
};

struct ConvergenceResult {
  /// Accuracy at the END of each epoch (size == plan size).
  std::vector<double> accuracy;
  bool diverged = false;
  double final_accuracy() const {
    require(!accuracy.empty(), "empty convergence result");
    return accuracy.back();
  }
  /// First epoch index whose end-of-epoch accuracy reaches `target`; -1 if
  /// never reached.
  int epochs_to_accuracy(double target) const;
};

class ConvergenceModel {
 public:
  explicit ConvergenceModel(ConvergenceParams params = {}) : params_(params) {}

  const ConvergenceParams& params() const { return params_; }

  /// The accuracy ceiling for a steady (TBS, lr) operating point with the
  /// given linear-scaling ratio (see EpochPlan::scale_ratio).
  double ceiling(int total_batch, double lr, double scale_ratio = 1.0) const;

  /// Runs the recipe and returns the per-epoch accuracy trajectory.
  ConvergenceResult simulate(const std::vector<EpochPlan>& plan) const;

  /// Convenience: final accuracy of a constant-TBS recipe starting from
  /// `lr0` with the standard step decays. The linear-scaling ratio is
  /// derived from lr0 and held through the run.
  double final_accuracy(int total_batch, double lr0, int epochs,
                        const std::vector<int>& decay_epochs, double decay = 0.1) const;

  /// Reference step-decay recipe (lr linearly scaled to the batch size,
  /// decays x0.1 at the given epochs).
  std::vector<EpochPlan> reference_recipe(int total_batch, int epochs,
                                          const std::vector<int>& decay_epochs) const;

  /// Calibration for ResNet-50 on ImageNet (90 epochs, decay at 30/60);
  /// reaches 75.89% with TBS 512.
  static ConvergenceModel resnet50_imagenet();

  /// Calibration for MobileNet-v2 on Cifar100 (Figure 5; 100 epochs,
  /// decay at 60/80); ~74.1% at the reference batch size 128.
  static ConvergenceModel mobilenet_cifar100();

 private:
  ConvergenceParams params_;
};

}  // namespace elan::train
