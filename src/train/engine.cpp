#include "train/engine.h"

#include "common/error.h"

namespace elan::train {

const char* to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kStaticGraph: return "static-graph";
    case EngineKind::kDynamicGraph: return "dynamic-graph";
    case EngineKind::kCustom: return "custom";
  }
  return "?";
}

void TrainingEngine::run_iteration(std::uint64_t gradient_seed, double lr,
                                   const data::SampleRange& shard) {
  compute_gradients(gradient_seed, shard);
  apply_update(gradient_seed, lr);
  bump_iteration();
}

void SimulatedEngine::register_state_hooks(HookRegistry& registry) {
  // Model parameters and optimizer state live in GPU memory (Table II).
  registry.register_hook(StateHook{
      "model", StateLocation::kGpu, optimizer_.nominal_parameter_bytes(),
      [this] { return optimizer_.parameters(); },
      [this](const Blob& b) { optimizer_.mutable_parameters().copy_from(b); }});
  registry.register_hook(StateHook{
      "optimizer", StateLocation::kGpu, optimizer_.nominal_optimizer_bytes(),
      [this] { return optimizer_.momentum(); },
      [this](const Blob& b) { optimizer_.mutable_momentum().copy_from(b); }});
}

void SimulatedEngine::apply_update(std::uint64_t gradient_seed, double lr) {
  // The mixing optimizer has no real LR; fold it into the seed so an LR
  // change still perturbs state deterministically and identically across
  // replicas.
  const auto lr_bits = static_cast<std::uint64_t>(lr * 1e12);
  optimizer_.step(gradient_seed ^ (lr_bits * 0x9e3779b97f4a7c15ULL));
}

std::uint64_t SimulatedEngine::state_checksum() const {
  return optimizer_.state_checksum();
}

Seconds StaticGraphEngine::initialization_time() const {
  // Library load + CUDA context + graph compilation; large models compile
  // longer.
  return 5.0 + 1.0e-8 * static_cast<double>(model().parameters);
}

Seconds StaticGraphEngine::per_iteration_overhead() const { return milliseconds(2.0); }

Seconds DynamicGraphEngine::initialization_time() const {
  // Library load + CUDA context; no graph compilation step.
  return 3.5;
}

Seconds DynamicGraphEngine::per_iteration_overhead() const { return milliseconds(6.0); }

std::unique_ptr<TrainingEngine> make_engine(const ModelSpec& model, EngineKind kind) {
  switch (kind) {
    case EngineKind::kStaticGraph: return std::make_unique<StaticGraphEngine>(model);
    case EngineKind::kDynamicGraph: return std::make_unique<DynamicGraphEngine>(model);
    case EngineKind::kCustom:
      throw InvalidArgument("custom engines come from JobConfig::engine_factory");
  }
  throw InvalidArgument("unknown engine kind");
}

}  // namespace elan::train
