#include "train/throughput.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace elan::train {

ThroughputModel::ThroughputModel(const topo::Topology& topology,
                                 const topo::BandwidthModel& bandwidth,
                                 ThroughputParams params)
    : topology_(&topology), bandwidth_(&bandwidth), params_(params) {}

Seconds ThroughputModel::compute_time(const ModelSpec& model, int per_worker_batch) const {
  require(per_worker_batch > 0, "compute_time: non-positive batch");
  const double b = per_worker_batch;
  const double h = model.half_efficiency_batch;
  const double per_unit = 3.0 * model.flops_per_sample / params_.gpu.peak_flops;
  return model.iteration_overhead + per_unit * (b + h) * (b + h) / b;
}

Seconds ThroughputModel::allreduce_time_on(const ModelSpec& model,
                                           const std::vector<topo::GpuId>& members) const {
  require(!members.empty(), "allreduce_time_on: empty member set");
  if (members.size() < 2) return 0.0;
  const comm::CommGroup group(*topology_, *bandwidth_, members);
  const auto level = group.bottleneck_level();
  const auto& link = bandwidth_->params(level);

  const double n = static_cast<double>(members.size());
  const Bytes payload = model.param_bytes();
  const double chunk = static_cast<double>(payload) / n;
  double bw = bandwidth_->effective_bandwidth(level, static_cast<Bytes>(chunk) + 1);
  if (level == topo::LinkLevel::kL4) bw *= params_.multi_node_ring_efficiency;

  const double steps = 2.0 * (n - 1.0);
  return steps * link.latency + steps * chunk / bw;
}

Seconds ThroughputModel::allreduce_time(const ModelSpec& model, int workers) const {
  require(workers > 0, "allreduce_time: non-positive workers");
  std::vector<topo::GpuId> members(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) members[static_cast<std::size_t>(i)] = i;
  return allreduce_time_on(model, members);
}

Seconds ThroughputModel::iteration_time_on(const ModelSpec& model,
                                           const std::vector<topo::GpuId>& members,
                                           int per_worker_batch) const {
  const Seconds compute = compute_time(model, per_worker_batch);
  const Seconds backward = (compute - model.iteration_overhead) * (2.0 / 3.0);
  const Seconds comm = allreduce_time_on(model, members);
  const Seconds exposed = std::max(0.0, comm - params_.comm_overlap * backward);
  return compute + exposed;
}

Seconds ThroughputModel::iteration_time(const ModelSpec& model, int workers,
                                        int per_worker_batch) const {
  std::vector<topo::GpuId> members(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) members[static_cast<std::size_t>(i)] = i;
  return iteration_time_on(model, members, per_worker_batch);
}

double ThroughputModel::throughput_on(const ModelSpec& model,
                                      const std::vector<topo::GpuId>& members,
                                      int total_batch) const {
  require(!members.empty() && total_batch > 0, "throughput_on: bad arguments");
  const int workers = static_cast<int>(members.size());
  const int per_worker = (total_batch + workers - 1) / workers;
  return static_cast<double>(total_batch) / iteration_time_on(model, members, per_worker);
}

double ThroughputModel::throughput(const ModelSpec& model, int workers, int total_batch) const {
  require(workers > 0 && total_batch > 0, "throughput: bad arguments");
  const int per_worker = (total_batch + workers - 1) / workers;
  const Seconds t = iteration_time(model, workers, per_worker);
  return static_cast<double>(total_batch) / t;
}

bool ThroughputModel::fits(const ModelSpec& model, int workers, int total_batch) const {
  if (workers <= 0 || workers > topology_->total_gpus()) return false;
  const int per_worker = (total_batch + workers - 1) / workers;
  return per_worker >= 1 && per_worker <= model.max_batch_per_gpu;
}

std::vector<int> ThroughputModel::candidate_worker_counts() const {
  std::vector<int> counts;
  for (int n = 1; n <= topology_->total_gpus(); n *= 2) counts.push_back(n);
  return counts;
}

int ThroughputModel::optimal_workers(const ModelSpec& model, int total_batch) const {
  int best_n = 0;
  double best_tp = -1.0;
  for (int n : candidate_worker_counts()) {
    if (!fits(model, n, total_batch)) continue;
    const double tp = throughput(model, n, total_batch);
    if (tp > best_tp) {
      best_tp = tp;
      best_n = n;
    }
  }
  require(best_n > 0, "optimal_workers: no feasible configuration for " + model.name);
  return best_n;
}

}  // namespace elan::train
