// Training-engine interface and the two cost-modelled engines.
//
// The paper demonstrates Elan's generality by integrating it with Caffe
// (static execution graph) and PyTorch (dynamic eager execution) through the
// same hook API. TrainingEngine is that integration surface inside this
// repository: a worker process drives any engine through
//
//   register_state_hooks()  — expose all state that must survive adjustments
//   compute_gradients()     — local forward/backward on this replica's shard
//   mutable_gradients()     — optional flat gradient buffer; when provided,
//                             the job allreduces it across replicas before
//   apply_update()          — optimizer step (identical on every replica)
//
// StaticGraphEngine / DynamicGraphEngine are cost-modelled engines whose
// state evolves through a deterministic mixing function (replication
// correctness is checkable without real math); minidl::MiniDlEngine
// (src/minidl/elan_engine.h) is a third implementation doing *real* math.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "data/sampler.h"
#include "elan/hooks.h"
#include "train/models.h"
#include "train/optimizer.h"

namespace elan::train {

enum class EngineKind { kStaticGraph, kDynamicGraph, kCustom };

const char* to_string(EngineKind kind);

class TrainingEngine {
 public:
  explicit TrainingEngine(EngineKind kind) : kind_(kind) {}
  virtual ~TrainingEngine() = default;

  TrainingEngine(const TrainingEngine&) = delete;
  TrainingEngine& operator=(const TrainingEngine&) = delete;

  EngineKind kind() const { return kind_; }

  /// Framework initialisation cost paid by a freshly started worker process
  /// (CUDA context, library load, graph compilation...). This is what the
  /// asynchronous coordination mechanism hides off the critical path.
  virtual Seconds initialization_time() const = 0;

  /// Host-side overhead added to every iteration on top of the modelled
  /// kernel time (dispatcher/executor cost).
  virtual Seconds per_iteration_overhead() const = 0;

  /// Registers every piece of engine state that replication/checkpointing
  /// must carry (paper Table II: model + optimizer, GPU-resident).
  virtual void register_state_hooks(HookRegistry& registry) = 0;

  /// Local forward/backward over this replica's data shard. `gradient_seed`
  /// is identical across replicas of an iteration (it encodes the globally
  /// agreed data assignment).
  virtual void compute_gradients(std::uint64_t gradient_seed,
                                 const data::SampleRange& shard) = 0;

  /// Flat gradient buffer for cross-replica reduction, or nullptr when the
  /// engine is self-contained (the cost-modelled engines synchronise through
  /// the shared seed instead).
  virtual std::vector<double>* mutable_gradients() { return nullptr; }

  /// Applies the optimizer update (after any gradient reduction) with the
  /// runtime learning rate. Must be deterministic given identical state.
  virtual void apply_update(std::uint64_t gradient_seed, double lr) = 0;

  /// Replica fingerprint over all engine state (the iteration counter is
  /// folded in by the worker).
  virtual std::uint64_t state_checksum() const = 0;

  /// Convenience: one full local iteration (compute + apply); used by unit
  /// tests and single-replica callers.
  void run_iteration(std::uint64_t gradient_seed, double lr = 0.1,
                     const data::SampleRange& shard = {});

  std::uint64_t iteration() const { return iteration_; }
  void set_iteration(std::uint64_t it) { iteration_ = it; }
  void bump_iteration() { ++iteration_; }

 private:
  EngineKind kind_;
  std::uint64_t iteration_ = 0;
};

/// Base for the two cost-modelled engines: state is an SgdOptimizer over
/// blobs that evolve via a history-dependent mixing function.
class SimulatedEngine : public TrainingEngine {
 public:
  SimulatedEngine(const ModelSpec& model, EngineKind kind)
      : TrainingEngine(kind), model_(model), optimizer_(model) {}

  const ModelSpec& model() const { return model_; }
  SgdOptimizer& optimizer() { return optimizer_; }
  const SgdOptimizer& optimizer() const { return optimizer_; }

  void register_state_hooks(HookRegistry& registry) override;
  void compute_gradients(std::uint64_t, const data::SampleRange&) override {}
  void apply_update(std::uint64_t gradient_seed, double lr) override;
  std::uint64_t state_checksum() const override;

 private:
  ModelSpec model_;
  SgdOptimizer optimizer_;
};

/// Caffe-like: the graph is compiled at startup, making init expensive and
/// iterations lean.
class StaticGraphEngine final : public SimulatedEngine {
 public:
  explicit StaticGraphEngine(const ModelSpec& model)
      : SimulatedEngine(model, EngineKind::kStaticGraph) {}
  Seconds initialization_time() const override;
  Seconds per_iteration_overhead() const override;
};

/// PyTorch-like: eager execution starts faster but pays dispatcher overhead
/// every iteration.
class DynamicGraphEngine final : public SimulatedEngine {
 public:
  explicit DynamicGraphEngine(const ModelSpec& model)
      : SimulatedEngine(model, EngineKind::kDynamicGraph) {}
  Seconds initialization_time() const override;
  Seconds per_iteration_overhead() const override;
};

std::unique_ptr<TrainingEngine> make_engine(const ModelSpec& model, EngineKind kind);

}  // namespace elan::train
