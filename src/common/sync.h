// Concurrency-correctness layer: annotated synchronisation primitives.
//
// Every mutex in the repository goes through this header — `tools/elan_lint`
// bans naked std::mutex / std::lock_guard / std::condition_variable outside
// this file and its .cpp. Two independent safety nets ride on that rule:
//
//   1. *Static*: the ELAN_* macros carry Clang Thread Safety Analysis
//      attributes. Fields annotated ELAN_GUARDED_BY(mu) may only be touched
//      while `mu` is held; functions annotated ELAN_REQUIRES(mu) may only be
//      called with `mu` held. Under Clang the build runs with
//      -Wthread-safety (CI promotes it to an error), so lock-discipline
//      violations are *compile* errors. Under GCC the macros expand to
//      nothing and the wrappers cost exactly one std::mutex.
//
//   2. *Dynamic*: when built with ELAN_LOCK_ORDER_CHECKS (the default; see
//      the CMake option), elan::Mutex feeds a process-wide lock-order graph.
//      Mutexes are grouped into classes by their constructor name; every
//      blocking acquisition while other locks are held records
//      held-class -> acquired-class edges, and an acquisition that would
//      close a cycle in that graph aborts immediately, printing the current
//      held stack *and* the stack recorded when the conflicting edge was
//      first seen. A potential ABBA deadlock is therefore caught on any
//      single-threaded execution of the two code paths — no unlucky
//      interleaving required. Recursive locking of the same instance aborts
//      too.
//
// Naming convention: give every Mutex a unique, stable, lowercase name
// ("thread_pool", "message_bus", ...). Instances sharing a name share a lock
// class; if two same-class instances must ever nest, split the class by
// giving them distinct names, otherwise the detector reports the nesting as
// a self-cycle (deliberately: same-class nesting is how ABBA deadlocks
// between peer objects start).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <source_location>

// --- Clang Thread Safety Analysis attribute macros -------------------------
//
// Canonical expansion of the TSA attribute set (see the Clang docs,
// "Thread Safety Analysis"); no-ops on non-Clang compilers.
#if defined(__clang__)
#define ELAN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ELAN_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability ("mutex").
#define ELAN_CAPABILITY(x) ELAN_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose lifetime acquires/releases a capability.
#define ELAN_SCOPED_CAPABILITY ELAN_THREAD_ANNOTATION(scoped_lockable)
/// Field/variable may only be accessed while holding `x`.
#define ELAN_GUARDED_BY(x) ELAN_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be accessed while holding `x`.
#define ELAN_PT_GUARDED_BY(x) ELAN_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function may only be called while holding the given capabilities.
#define ELAN_REQUIRES(...) ELAN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the given capabilities (held on return).
#define ELAN_ACQUIRE(...) ELAN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the given capabilities.
#define ELAN_RELEASE(...) ELAN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability only when returning `value`.
#define ELAN_TRY_ACQUIRE(...) ELAN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function must NOT be called while holding the given capabilities.
#define ELAN_EXCLUDES(...) ELAN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the given capability.
#define ELAN_RETURN_CAPABILITY(x) ELAN_THREAD_ANNOTATION(lock_returned(x))
/// Declares `x` held without acquiring it (runtime-verified entry points).
#define ELAN_ASSERT_CAPABILITY(x) ELAN_THREAD_ANNOTATION(assert_capability(x))
/// Escape hatch: disables the analysis for one function. Use only inside the
/// sync layer itself (adopt/release plumbing the analysis cannot follow).
#define ELAN_NO_THREAD_SAFETY_ANALYSIS ELAN_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace elan {

/// True when this build carries the runtime lock-order detector (set by the
/// ELAN_LOCK_ORDER_CHECKS CMake option). Tests use it to skip death tests in
/// builds configured without the detector.
bool lock_order_checks_enabled();

/// Small dense per-thread index, assigned on first use in thread-arrival
/// order. Stable for the thread's lifetime; indices are never reused within
/// a process. The logger and the observability layer use it to tag output
/// with a readable thread id (std::thread::id is opaque and wide).
std::uint32_t this_thread_index();

/// Process-wide hook invoked when the lock-order detector is about to abort
/// (after the report is printed, before std::abort). The flight recorder
/// installs one to dump a crash record. The hook runs while the detector's
/// internal mutex may be held, so it must not allocate or take locks.
/// Returns the previously installed hook; nullptr clears.
using LockOrderDieHook = void (*)(const char* report);
LockOrderDieHook set_lock_order_die_hook(LockOrderDieHook hook) noexcept;

/// Annotated mutex. Non-recursive. See the file comment for the naming
/// convention; the name also appears in every detector report.
class ELAN_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name = "mutex");
  ~Mutex();

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Blocking acquire. With the detector on: checks the lock-order graph
  /// *before* blocking (so a true deadlock still gets reported), records
  /// ordering edges against every lock the thread already holds, and aborts
  /// on a cycle or on recursive acquisition.
  void lock(std::source_location loc = std::source_location::current()) ELAN_ACQUIRE();

  void unlock() ELAN_RELEASE();

  /// Non-blocking acquire. Cannot deadlock, so the detector records the held
  /// entry but no ordering edges for it.
  bool try_lock(std::source_location loc = std::source_location::current())
      ELAN_TRY_ACQUIRE(true);

  const char* name() const { return name_; }

 private:
  friend class CondVar;

  std::mutex m_;
  const char* name_;
  std::uint32_t class_id_ = 0;  // lock class in the order graph (0 = untracked)
};

/// RAII lock for elan::Mutex — the only way application code should hold one.
class ELAN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu,
                     std::source_location loc = std::source_location::current())
      ELAN_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock(loc);
  }

  ~MutexLock() ELAN_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with elan::Mutex.
///
/// No predicate overload on purpose: a predicate lambda cannot carry a
/// capability annotation the analysis can match against the caller's lock,
/// so callers write the canonical loop instead —
///
///   MutexLock lock(mu_);
///   while (!condition) cv_.wait(mu_);
///
/// which Clang TSA verifies end to end.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and waits; `mu` is re-held on return. May wake
  /// spuriously — always wait in a while loop.
  void wait(Mutex& mu) ELAN_REQUIRES(mu);

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace elan
