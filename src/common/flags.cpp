#include "common/flags.h"

#include <cstdlib>
#include <sstream>

#include "common/log.h"

namespace elan {

void Flags::define(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  require(!name.empty() && name[0] != '-', "flag names are given without dashes");
  require(specs_.emplace(name, Spec{default_value, help, std::nullopt}).second,
          "duplicate flag: " + name);
  order_.push_back(name);
}

const Flags::Spec& Flags::spec(const std::string& name) const {
  auto it = specs_.find(name);
  if (it == specs_.end()) throw NotFound("flag: " + name);
  return it->second;
}

std::vector<std::string> Flags::parse(int argc, const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    if (arg == "help") {
      help_ = true;
      continue;
    }
    std::string value;
    bool have_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      have_value = true;
    }
    auto it = specs_.find(arg);
    require(it != specs_.end(), "unknown flag --" + arg);
    if (!have_value) {
      // Allow "--flag value" unless the next token is a flag (boolean form).
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
  }
  return positional;
}

bool Flags::has(const std::string& name) const { return spec(name).value.has_value(); }

std::string Flags::get(const std::string& name) const {
  const auto& s = spec(name);
  return s.value.value_or(s.default_value);
}

std::int64_t Flags::get_int(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const auto out = std::strtoll(v.c_str(), &end, 10);
  require(end != nullptr && *end == '\0' && !v.empty(),
          "flag --" + name + " expects an integer, got '" + v + "'");
  return out;
}

double Flags::get_double(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  require(end != nullptr && *end == '\0' && !v.empty(),
          "flag --" + name + " expects a number, got '" + v + "'");
  return out;
}

bool Flags::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw InvalidArgument("flag --" + name + " expects a boolean, got '" + v + "'");
}

void define_log_level_flag(Flags& flags) {
  std::string def = "warn";
  if (const char* env = std::getenv("ELAN_LOG"); env != nullptr && *env != '\0') {
    if (parse_log_level(env)) def = env;
  }
  flags.define("log-level", def,
               "log verbosity: trace|debug|info|warn|error|off (default honours ELAN_LOG)");
}

void apply_log_level_flag(const Flags& flags) {
  const std::string v = flags.get("log-level");
  const auto level = parse_log_level(v);
  require(level.has_value(), "flag --log-level: unknown level '" + v + "'");
  Logger::set_level(*level);
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const auto& s = specs_.at(name);
    os << "  --" << name << " (default: " << s.default_value << ")  " << s.help << "\n";
  }
  return os.str();
}

}  // namespace elan
