// Blob: a named, owned byte buffer representing training state.
//
// Model parameters, optimizer state and loader cursors are all carried as
// blobs so that state replication moves real bytes whose integrity tests can
// verify with checksums.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/units.h"

namespace elan {

/// FNV-1a 64-bit checksum.
std::uint64_t fnv1a(std::span<const std::uint8_t> data);

/// Cheap content fingerprint over a byte range: samples at most 64 bytes at a
/// fixed stride. Hot paths (per-chunk replication verification) use this; a
/// full fnv1a scan still guards final correctness.
std::uint64_t quick_fingerprint(std::span<const std::uint8_t> data);

class Blob {
 public:
  Blob() = default;
  Blob(std::string name, Bytes size) : name_(std::move(name)), data_(size, 0) {}
  Blob(std::string name, std::vector<std::uint8_t> data)
      : name_(std::move(name)), data_(std::move(data)) {}

  const std::string& name() const { return name_; }
  Bytes size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  std::span<const std::uint8_t> bytes() const { return data_; }
  std::span<std::uint8_t> mutable_bytes() { return data_; }

  std::uint64_t checksum() const { return fnv1a(data_); }

  /// Cheap content fingerprint: samples at most 64 bytes at a fixed stride.
  /// Used on hot paths where a full checksum scan would dominate runtime;
  /// replication correctness still uses the full checksum.
  std::uint64_t quick_fingerprint() const;

  /// Fills the blob with a deterministic pattern derived from `seed`; used to
  /// make replication correctness observable.
  void fill_pattern(std::uint64_t seed);

  /// Overwrites this blob's contents with `other`'s (sizes must match).
  void copy_from(const Blob& other);

  bool operator==(const Blob& other) const {
    return name_ == other.name_ && data_ == other.data_;
  }

 private:
  std::string name_;
  std::vector<std::uint8_t> data_;
};

}  // namespace elan
