// Minimal leveled logger.
//
// The simulator is deterministic and single threaded, so the logger is
// intentionally simple: a global level, a sink that defaults to stderr, and
// printf-free stream-style composition at the call site via Logger::log.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace elan {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global logger. Not thread-safe by design (the simulator is single-threaded).
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel level();
  static void set_level(LogLevel level);

  /// Replace the sink (used by tests to capture output). Pass nullptr to
  /// restore the default stderr sink.
  static void set_sink(Sink sink);

  static void log(LogLevel level, const std::string& message);
  static bool enabled(LogLevel level) { return level >= Logger::level(); }
};

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::log(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_trace() { return detail::LogLine(LogLevel::kTrace); }
inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace elan
