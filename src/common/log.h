// Minimal leveled logger.
//
// Thread-safe: the runtime has been concurrent since the parallel-execution
// PR (thread pool workers, off-thread coordination), so lines may be emitted
// from any thread. The level check is a relaxed atomic load — the disabled
// fast path costs one branch — and the sink is guarded by an elan::Mutex, so
// concurrent lines never interleave mid-line. The default stderr sink
// prefixes every line with the level, wall-clock time and the emitting
// thread's dense index, e.g. "[WARN  12:34:56.789 t03] message".
//
// The sink callback is invoked with the logger mutex held (that is what
// serialises output); a sink must therefore not log, or it deadlocks on the
// non-recursive mutex.
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <sstream>
#include <string>

namespace elan {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive) -> level.
std::optional<LogLevel> parse_log_level(const std::string& name);
const char* to_string(LogLevel level);

/// Global logger. Thread-safe (see the file comment).
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel level();
  static void set_level(LogLevel level);

  /// Applies the ELAN_LOG environment variable (trace|debug|info|warn|error|
  /// off) to the global level; unknown or unset values leave it untouched.
  static void init_from_env();

  /// Replace the sink (used by tests to capture output). Pass nullptr to
  /// restore the default stderr sink. The sink runs under the logger mutex
  /// and must not log.
  static void set_sink(Sink sink);

  static void log(LogLevel level, const std::string& message);
  static bool enabled(LogLevel level) { return level >= Logger::level(); }

  /// The default sink's line format ("[LEVEL HH:MM:SS.mmm tNN] message"),
  /// exposed so tests can check the prefix without scraping stderr.
  static std::string format_line(LogLevel level, const std::string& message);
};

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::log(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_trace() { return detail::LogLine(LogLevel::kTrace); }
inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace elan
