#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace elan {

ThreadPool::ThreadPool(int threads) : threads_(threads) {
  require(threads >= 1, "ThreadPool: need at least one thread");
  if (threads_ <= 1) return;  // inline pool, no workers
  workers_.reserve(static_cast<std::size_t>(threads_));
  for (int i = 0; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  static auto& tasks_total = obs::MetricsRegistry::instance().counter(
      "elan_threadpool_tasks_total", "Tasks submitted to the thread pool");
  tasks_total.add(1);
  if (obs::Tracer::enabled()) {
    // Wrap the task so the trace shows queue-wait separately from run time.
    // The wrapper allocates, but only when tracing is on.
    const double enqueued_us = obs::Tracer::instance().now_us();
    task = [inner = std::move(task), enqueued_us] {
      auto& tracer = obs::Tracer::instance();
      const double start_us = tracer.now_us();
      if (start_us > enqueued_us) {
        tracer.complete("threadpool", "queue_wait", enqueued_us, start_us - enqueued_us);
      }
      ELAN_TRACE_SCOPE("threadpool", "task_run");
      inner();
    };
  }
  {
    MutexLock lock(mutex_);
    ELAN_CHECK(!stop_, "ThreadPool: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                              const std::function<void(std::int64_t, std::int64_t)>& fn) {
  require(grain >= 1, "parallel_for: non-positive grain");
  if (begin >= end) return;
  if (threads_ <= 1 || end - begin <= grain) {
    // Inline path: same chunk boundaries as the pooled path (the partition
    // is part of the contract — callers may rely on per-chunk behaviour
    // being identical at every thread count).
    for (std::int64_t b = begin; b < end; b += grain) {
      fn(b, std::min(end, b + grain));
    }
    return;
  }

  struct Sync {
    Mutex m{"parallel_for_sync"};
    CondVar done;
    std::int64_t pending ELAN_GUARDED_BY(m) = 0;
    std::exception_ptr error ELAN_GUARDED_BY(m);
  };
  auto sync = std::make_shared<Sync>();
  {
    MutexLock lock(sync->m);
    sync->pending = (end - begin + grain - 1) / grain;
  }

  for (std::int64_t b = begin; b < end; b += grain) {
    const std::int64_t e = std::min(end, b + grain);
    // `fn` is captured by reference: the loop below does not return before
    // every chunk completed, so the reference outlives the tasks.
    enqueue([sync, &fn, b, e] {
      try {
        fn(b, e);
      } catch (...) {
        MutexLock lock(sync->m);
        if (!sync->error) sync->error = std::current_exception();
      }
      bool last = false;
      {
        MutexLock lock(sync->m);
        last = --sync->pending == 0;
      }
      if (last) sync->done.notify_all();
    });
  }

  // Help while waiting: run queued tasks instead of sleeping. This is what
  // makes nested parallelism deadlock-free — a worker that entered a nested
  // parallel_for drains the queue (including its own sub-chunks) rather than
  // blocking a pool slot. Sleeping is safe only once the queue is empty: our
  // remaining chunks are then running on other threads, and any task those
  // threads enqueue afterwards is drained by their own help loops.
  for (;;) {
    {
      MutexLock lock(sync->m);
      if (sync->pending == 0) break;
    }
    if (try_run_one()) continue;
    MutexLock lock(sync->m);
    while (sync->pending != 0) sync->done.wait(sync->m);
    break;
  }
  std::exception_ptr error;
  {
    MutexLock lock(sync->m);
    error = sync->error;
  }
  if (error) std::rethrow_exception(error);
}

namespace {

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

Mutex& global_mutex() {
  static Mutex m("thread_pool_global");
  return m;
}

}  // namespace

int ThreadPool::default_threads() {
  if (const char* env = std::getenv("ELAN_THREADS")) {
    char* tail = nullptr;
    const long v = std::strtol(env, &tail, 10);
    if (tail != nullptr && *tail == '\0' && v >= 1) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::global() {
  MutexLock lock(global_mutex());
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(default_threads());
  return *slot;
}

void ThreadPool::set_global_threads(int threads) {
  require(threads >= 1, "set_global_threads: need at least one thread");
  MutexLock lock(global_mutex());
  auto& slot = global_slot();
  if (slot && slot->size() == threads) return;
  slot.reset();  // join the old workers before spawning the new pool
  slot = std::make_unique<ThreadPool>(threads);
}

}  // namespace elan
