#include "common/error.h"

#include <atomic>

namespace elan::detail {

namespace {
std::atomic<CheckFailureHook> g_check_failure_hook{nullptr};
}  // namespace

CheckFailureHook set_check_failure_hook(CheckFailureHook hook) noexcept {
  return g_check_failure_hook.exchange(hook, std::memory_order_acq_rel);
}

void invoke_check_failure_hook(const char* expr, const char* file, int line,
                               const char* message) noexcept {
  if (const CheckFailureHook hook =
          g_check_failure_hook.load(std::memory_order_acquire);
      hook != nullptr) {
    hook(expr, file, line, message);
  }
}

}  // namespace elan::detail
