#include "common/rng.h"

#include <algorithm>

namespace elan {

double Rng::truncated_normal(double mean, double stddev, double lo, double hi) {
  for (int i = 0; i < 64; ++i) {
    const double v = normal(mean, stddev);
    if (v >= lo && v <= hi) return v;
  }
  // Degenerate parameters: fall back to clamping.
  return std::clamp(mean, lo, hi);
}

}  // namespace elan
