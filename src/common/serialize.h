// Tiny binary serialisation used for checkpoints, KV-store persistence and
// message payloads. Little-endian, length-prefixed, no versioning (the whole
// repository is built together).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"

namespace elan {

class BinaryWriter {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    buffer_.insert(buffer_.end(), p, p + sizeof(T));
  }

  void write_string(const std::string& s) {
    write<std::uint64_t>(s.size());
    buffer_.insert(buffer_.end(), s.begin(), s.end());
  }

  void write_bytes(std::span<const std::uint8_t> data) {
    write<std::uint64_t>(data.size());
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::uint8_t> data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    ELAN_CHECK(pos_ + sizeof(T) <= data_.size(), "BinaryReader: out of data");
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string read_string() {
    const auto n = read<std::uint64_t>();
    ELAN_CHECK(pos_ + n <= data_.size(), "BinaryReader: string out of data");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<std::uint8_t> read_bytes() {
    const auto n = read<std::uint64_t>();
    ELAN_CHECK(pos_ + n <= data_.size(), "BinaryReader: bytes out of data");
    std::vector<std::uint8_t> v(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return v;
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace elan
