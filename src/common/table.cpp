#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace elan {

void Table::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(), "Table row width mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::to_cell(double v) {
  char buf[64];
  if (v == 0.0 || (std::abs(v) >= 0.01 && std::abs(v) < 1e7)) {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3e", v);
  }
  return buf;
}

std::string Table::to_cell(int v) { return std::to_string(v); }
std::string Table::to_cell(long v) { return std::to_string(v); }
std::string Table::to_cell(unsigned long v) { return std::to_string(v); }
std::string Table::to_cell(unsigned long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  auto print_rule = [&]() {
    os << "+";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };

  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace elan
