// Basic physical units used throughout the simulator.
//
// All times are virtual seconds (double), all sizes are bytes (std::uint64_t),
// and all bandwidths are bytes per second (double). Small strong-ish types and
// literal helpers keep call sites readable without the weight of a full unit
// library.
#pragma once

#include <cstdint>
#include <string>

namespace elan {

/// Virtual time in seconds.
using Seconds = double;

/// Size in bytes.
using Bytes = std::uint64_t;

/// Bandwidth in bytes per second.
using BytesPerSecond = double;

constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ULL; }
constexpr Bytes operator""_MiB(unsigned long long v) { return v * 1024ULL * 1024ULL; }
constexpr Bytes operator""_GiB(unsigned long long v) { return v * 1024ULL * 1024ULL * 1024ULL; }

constexpr BytesPerSecond gib_per_sec(double v) { return v * 1024.0 * 1024.0 * 1024.0; }
constexpr BytesPerSecond mib_per_sec(double v) { return v * 1024.0 * 1024.0; }

/// 56 Gbps InfiniBand payload bandwidth expressed in bytes/second.
constexpr BytesPerSecond gbit_per_sec(double v) { return v * 1e9 / 8.0; }

constexpr Seconds microseconds(double v) { return v * 1e-6; }
constexpr Seconds milliseconds(double v) { return v * 1e-3; }
constexpr Seconds minutes(double v) { return v * 60.0; }
constexpr Seconds hours(double v) { return v * 3600.0; }

/// Human readable byte count, e.g. "1.5 GiB".
std::string format_bytes(Bytes b);

/// Human readable duration, e.g. "1.53 s" or "12.1 ms".
std::string format_seconds(Seconds s);

/// Human readable bandwidth, e.g. "12.3 GiB/s".
std::string format_bandwidth(BytesPerSecond bps);

}  // namespace elan
