// ASCII table printer used by the benchmark harnesses to render paper-style
// tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace elan {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Adds a row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats arbitrary streamable values into cells.
  template <typename... Ts>
  void add(const Ts&... cells) {
    add_row({to_cell(cells)...});
  }

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  static std::string to_cell(int v);
  static std::string to_cell(long v);
  static std::string to_cell(unsigned long v);
  static std::string to_cell(unsigned long long v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace elan
