// Error types shared across the library.
#pragma once

#include <stdexcept>
#include <string>

namespace elan {

/// Base class for all Elan errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller supplied an invalid argument or configuration.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error("invalid argument: " + what) {}
};

/// Internal invariant violated; indicates a bug in the library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error("internal error: " + what) {}
};

/// A requested entity (worker, file, key, ...) does not exist.
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what) : Error("not found: " + what) {}
};

/// Throws InvalidArgument if `cond` is false.
inline void require(bool cond, const std::string& what) {
  if (!cond) throw InvalidArgument(what);
}

namespace detail {

/// Process-wide hook invoked on every ELAN_CHECK / ELAN_DCHECK failure,
/// before the InternalError is thrown. The flight recorder (src/obs/flight)
/// installs one to dump a crash record while the failing state is still in
/// memory. The hook must not throw. Returns the previously installed hook;
/// nullptr clears. Defined in error.cpp.
using CheckFailureHook = void (*)(const char* expr, const char* file,
                                  int line, const char* message);
CheckFailureHook set_check_failure_hook(CheckFailureHook hook) noexcept;
void invoke_check_failure_hook(const char* expr, const char* file, int line,
                               const char* message) noexcept;

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& note = {}) {
  std::string what = "check failed: ";
  what += expr;
  what += " (";
  what += file;
  what += ':';
  what += std::to_string(line);
  what += ')';
  if (!note.empty()) {
    what += ": ";
    what += note;
  }
  invoke_check_failure_hook(expr, file, line, what.c_str());
  throw InternalError(what);
}

}  // namespace detail

}  // namespace elan

/// Internal-invariant check. Throws InternalError carrying the failed
/// expression text and its file:line, plus an optional note:
///
///   ELAN_CHECK(it != map.end());
///   ELAN_CHECK(n >= 0, "negative shard count");
///
/// Use `require()` for caller mistakes (InvalidArgument); ELAN_CHECK is for
/// conditions that can only fail through a bug in this library.
#define ELAN_CHECK(cond, ...)                                              \
  do {                                                                     \
    if (!(cond)) [[unlikely]]                                              \
      ::elan::detail::check_failed(#cond, __FILE__,                        \
                                   __LINE__ __VA_OPT__(, ) __VA_ARGS__);   \
  } while (0)

/// Debug-only variant: compiled out (condition not evaluated) under NDEBUG,
/// but still parsed, so it cannot bit-rot.
#ifdef NDEBUG
#define ELAN_DCHECK(cond, ...)          \
  do {                                  \
    if (false && (cond)) {              \
    }                                   \
  } while (0)
#else
#define ELAN_DCHECK(cond, ...) ELAN_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#endif
