// Error types shared across the library.
#pragma once

#include <stdexcept>
#include <string>

namespace elan {

/// Base class for all Elan errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller supplied an invalid argument or configuration.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error("invalid argument: " + what) {}
};

/// Internal invariant violated; indicates a bug in the library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error("internal error: " + what) {}
};

/// A requested entity (worker, file, key, ...) does not exist.
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what) : Error("not found: " + what) {}
};

/// Throws InvalidArgument if `cond` is false.
inline void require(bool cond, const std::string& what) {
  if (!cond) throw InvalidArgument(what);
}

/// Throws InternalError if `cond` is false.
inline void ensure(bool cond, const std::string& what) {
  if (!cond) throw InternalError(what);
}

}  // namespace elan
