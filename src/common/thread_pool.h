// Fixed-size worker thread pool — the parallel execution substrate for the
// compute hot paths (minidl kernels, concurrent replica stepping, chunked
// allreduce).
//
// Design constraints, in priority order:
//   1. *Determinism of results.* parallel_for only hands out disjoint index
//      ranges; each index is processed exactly once and callers keep the
//      per-element operation order independent of the partition, so results
//      are bit-identical for any thread count (the minidl replication
//      invariant rides on this — see DESIGN.md "Parallel runtime").
//   2. *Deterministic shutdown.* The destructor joins every worker; no
//      detached threads, no tasks outliving the pool.
//   3. *Exception transparency.* A task that throws has the exception
//      captured and rethrown to the waiter (futures for submit(), the calling
//      thread for parallel_for()).
//
// Sizing: the global() pool reads the ELAN_THREADS environment variable once
// at first use (falling back to std::thread::hardware_concurrency()); CLI
// tools and benches can override it at runtime with set_global_threads()
// after parsing a --threads flag (common/flags).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/error.h"
#include "common/sync.h"

namespace elan {

class ThreadPool {
 public:
  /// Spawns `threads` workers. `threads == 1` is a valid degenerate pool:
  /// submit() and parallel_for() then run everything inline on the caller's
  /// thread (no worker hop, no locking on the hot path).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return threads_; }

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown by
  /// `fn` surface on future.get().
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    auto future = task->get_future();
    if (threads_ <= 1) {
      (*task)();
      return future;
    }
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Splits [begin, end) into contiguous chunks of at most `grain` indices
  /// and runs `fn(chunk_begin, chunk_end)` for each, in parallel. Blocks
  /// until every chunk completed; rethrows the first task exception. Chunk
  /// boundaries depend only on (begin, end, grain) — never on the thread
  /// count — so a caller whose per-element work is order-independent across
  /// chunks gets bit-identical results at any pool size.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Process-wide pool. Sized from ELAN_THREADS (env) at first use; defaults
  /// to hardware_concurrency().
  static ThreadPool& global();

  /// Re-sizes the global pool (tools/benches after flag parsing; tests that
  /// sweep thread counts). Blocks until the old pool drained.
  static void set_global_threads(int threads);

  /// Thread count the global pool would use if created now.
  static int default_threads();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();
  /// Pops and runs one queued task if any; returns whether it did (the
  /// "help while waiting" primitive behind nested parallel_for).
  bool try_run_one();

  int threads_ = 1;           // set once in the constructor
  std::vector<std::thread> workers_;  // written in ctor, joined in dtor only
  Mutex mutex_{"thread_pool"};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ ELAN_GUARDED_BY(mutex_);
  bool stop_ ELAN_GUARDED_BY(mutex_) = false;
};

}  // namespace elan
