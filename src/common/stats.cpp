#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace elan {

void Stats::add(double v) {
  values_.push_back(v);
  sum_ += v;
  sorted_ = false;
}

double Stats::mean() const {
  if (values_.empty()) return 0.0;
  return sum_ / static_cast<double>(values_.size());
}

double Stats::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Stats::min() const {
  require(!values_.empty(), "Stats::min on empty accumulator");
  return *std::min_element(values_.begin(), values_.end());
}

double Stats::max() const {
  require(!values_.empty(), "Stats::max on empty accumulator");
  return *std::max_element(values_.begin(), values_.end());
}

void Stats::sort_if_needed() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Stats::percentile(double p) const {
  require(!values_.empty(), "Stats::percentile on empty accumulator");
  require(p >= 0.0 && p <= 100.0, "percentile out of range");
  sort_if_needed();
  if (values_.size() == 1) return values_[0];
  const double idx = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, values_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

}  // namespace elan
