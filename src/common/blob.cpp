#include "common/blob.h"

#include <algorithm>

#include "common/error.h"

namespace elan {

std::uint64_t fnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : data) {
    hash ^= b;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t quick_fingerprint(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  if (data.empty()) return h;
  const std::size_t stride = std::max<std::size_t>(1, data.size() / 64);
  for (std::size_t i = 0; i < data.size(); i += stride) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t Blob::quick_fingerprint() const { return elan::quick_fingerprint(data_); }

void Blob::fill_pattern(std::uint64_t seed) {
  std::uint64_t x = seed ^ 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    // xorshift64* keeps the pattern cheap yet seed-sensitive.
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    data_[i] = static_cast<std::uint8_t>((x * 0x2545f4914f6cdd1dULL) >> 56);
  }
}

void Blob::copy_from(const Blob& other) {
  require(data_.size() == other.data_.size(),
          "Blob::copy_from size mismatch: " + name_ + " <- " + other.name_);
  data_ = other.data_;
}

}  // namespace elan
