// Deterministic random number generation.
//
// Every stochastic component takes an explicit Rng (or a seed) so that whole
// simulations are reproducible; `fork` derives independent child streams.
#pragma once

#include <cstdint>
#include <random>

namespace elan {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal distribution.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Truncated normal: resamples until the value falls in [lo, hi].
  double truncated_normal(double mean, double stddev, double lo, double hi);

  /// Exponential distribution with the given rate (1/mean).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Log-normal distribution parameterised by the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent child generator; advances this generator.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace elan
