#include "common/units.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace elan {

namespace {

std::string format_with_suffix(double value, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffix);
  return buf;
}

}  // namespace

std::string format_bytes(Bytes b) {
  constexpr std::array<const char*, 5> suffixes = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(b);
  std::size_t i = 0;
  while (v >= 1024.0 && i + 1 < suffixes.size()) {
    v /= 1024.0;
    ++i;
  }
  return format_with_suffix(v, suffixes[i]);
}

std::string format_seconds(Seconds s) {
  if (s < 0) return "-" + format_seconds(-s);
  if (s < 1e-3) return format_with_suffix(s * 1e6, "us");
  if (s < 1.0) return format_with_suffix(s * 1e3, "ms");
  if (s < 120.0) return format_with_suffix(s, "s");
  if (s < 7200.0) return format_with_suffix(s / 60.0, "min");
  return format_with_suffix(s / 3600.0, "h");
}

std::string format_bandwidth(BytesPerSecond bps) {
  if (bps < 1024.0 * 1024.0) return format_with_suffix(bps / 1024.0, "KiB/s");
  if (bps < 1024.0 * 1024.0 * 1024.0) return format_with_suffix(bps / (1024.0 * 1024.0), "MiB/s");
  return format_with_suffix(bps / (1024.0 * 1024.0 * 1024.0), "GiB/s");
}

}  // namespace elan
