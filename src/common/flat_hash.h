// Open-addressed hash map keyed by packed 64-bit integers.
//
// The scheduler and simulator hot paths hit their memo/index maps millions of
// times per run; std::unordered_map pays a heap allocation per node and a
// pointer chase per probe, and std::map adds a comparison tree on top. This
// map stores key/value slots inline in one power-of-two array with linear
// probing and backward-shift deletion (no tombstones), so a hit is typically
// one or two adjacent cache lines.
//
// Determinism: the table is never iterated — there is deliberately no
// begin()/end() — so probe layout cannot leak into observable behaviour. The
// hash is a fixed integer mix (splitmix64 finalizer), identical on every
// platform and run.
//
// Not thread-safe; callers synchronise externally (the simulator holds its
// mutex, the cluster simulator is single-threaded).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.h"

namespace elan {

/// Maps std::uint64_t keys to V. One key value is reserved as the
/// empty-slot sentinel (all-ones); callers never use it (packed keys in this
/// repo always leave at least one high bit clear, and heap handles count up
/// from 1).
template <typename V>
class FlatMap64 {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  explicit FlatMap64(std::size_t capacity_hint = 16) {
    std::size_t cap = 16;
    while (cap < capacity_hint * 2) cap <<= 1;
    slots_.resize(cap);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    for (auto& s : slots_) s.key = kEmptyKey;
    size_ = 0;
  }

  /// Pointer to the value for `key`, or nullptr when absent.
  V* find(std::uint64_t key) {
    std::size_t i = index_of(key);
    while (slots_[i].key != kEmptyKey) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask();
    }
    return nullptr;
  }
  const V* find(std::uint64_t key) const {
    return const_cast<FlatMap64*>(this)->find(key);
  }

  /// Inserts `key` (which must be absent — memo caches check find() first)
  /// with `value`.
  void insert(std::uint64_t key, V value) {
    ELAN_CHECK(key != kEmptyKey, "FlatMap64: reserved key");
    if ((size_ + 1) * 4 >= slots_.size() * 3) grow();
    std::size_t i = index_of(key);
    while (slots_[i].key != kEmptyKey) {
      ELAN_CHECK(slots_[i].key != key, "FlatMap64: duplicate insert");
      i = (i + 1) & mask();
    }
    slots_[i].key = key;
    slots_[i].value = std::move(value);
    ++size_;
  }

  /// Value reference for `key`, default-constructing it when absent.
  V& operator[](std::uint64_t key) {
    if (V* v = find(key)) return *v;
    insert(key, V{});
    return *find(key);
  }

  /// Removes `key`; returns false when absent. Backward-shift deletion keeps
  /// probe chains intact without tombstones, so load never rots.
  bool erase(std::uint64_t key) {
    std::size_t i = index_of(key);
    while (slots_[i].key != key) {
      if (slots_[i].key == kEmptyKey) return false;
      i = (i + 1) & mask();
    }
    std::size_t hole = i;
    for (;;) {
      i = (i + 1) & mask();
      if (slots_[i].key == kEmptyKey) break;
      const std::size_t home = index_of(slots_[i].key);
      // Move slot i back into the hole unless it already sits within its own
      // probe run strictly after the hole (cyclic distance test).
      if (((i - home) & mask()) >= ((i - hole) & mask())) {
        slots_[hole] = std::move(slots_[i]);
        hole = i;
      }
    }
    slots_[hole].key = kEmptyKey;
    --size_;
    return true;
  }

 private:
  struct Slot {
    std::uint64_t key = kEmptyKey;
    V value{};
  };

  std::size_t mask() const { return slots_.size() - 1; }

  static std::uint64_t mix(std::uint64_t x) {
    // splitmix64 finalizer: full avalanche, fixed constants.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::size_t index_of(std::uint64_t key) const {
    return static_cast<std::size_t>(mix(key)) & mask();
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(old.size() * 2);
    size_ = 0;
    for (auto& s : old) {
      if (s.key != kEmptyKey) insert(s.key, std::move(s.value));
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace elan
