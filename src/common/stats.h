// Streaming statistics accumulator (mean / stddev / min / max / percentiles).
#pragma once

#include <cstddef>
#include <vector>

namespace elan {

class Stats {
 public:
  void add(double v);

  std::size_t count() const { return values_.size(); }
  double sum() const { return sum_; }
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;

  void sort_if_needed() const;
};

}  // namespace elan
