#include "common/sync.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

// The lock-order detector (see sync.h for the model). All bookkeeping lives
// behind one internal std::mutex; the fast path — acquiring while holding no
// other lock, which covers every hot-path acquisition in the thread pool —
// touches only a thread_local vector and never takes it.
//
// This file is the one place naked std:: primitives are allowed (the
// detector cannot be built on elan::Mutex without infinite recursion);
// tools/elan_lint whitelists sync.h/sync.cpp for exactly that reason.

namespace elan {

namespace {

#if defined(ELAN_LOCK_ORDER_CHECKS)
constexpr bool kLockOrderChecks = true;
#else
constexpr bool kLockOrderChecks = false;
#endif

struct HeldLock {
  const Mutex* mu;
  std::uint32_t cls;
  const char* name;
  std::source_location loc;
};

// Locks currently held by this thread, acquisition order. Leaked vector so
// thread exit during static destruction cannot touch a dead object.
std::vector<HeldLock>& held_stack() {
  thread_local std::vector<HeldLock>* held = new std::vector<HeldLock>();
  return *held;
}

std::uint64_t edge_key(std::uint32_t from, std::uint32_t to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

// Global lock-class registry and order graph. Immortal (never destroyed):
// worker threads may still lock mutexes while static destructors run.
struct Registry {
  std::mutex m;
  std::map<std::string, std::uint32_t> class_ids;
  std::vector<std::string> class_names;  // index = class id - 1
  // Adjacency: class -> classes acquired while it was held.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> adj;
  // For every first-seen edge, the formatted held stack at record time —
  // this is "the other thread's stack" printed when a later acquisition
  // closes a cycle.
  std::unordered_map<std::uint64_t, std::string> edge_stacks;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

std::string format_site(const std::source_location& loc) {
  return std::string(loc.file_name()) + ":" + std::to_string(loc.line());
}

std::string format_held_stack(const std::vector<HeldLock>& held) {
  std::string out;
  for (std::size_t i = held.size(); i-- > 0;) {
    out += "    #" + std::to_string(held.size() - 1 - i) + " \"" + held[i].name +
           "\" acquired at " + format_site(held[i].loc) + "\n";
  }
  return out;
}

std::atomic<LockOrderDieHook> g_die_hook{nullptr};

[[noreturn]] void die(const std::string& report) {
  std::fputs(report.c_str(), stderr);
  std::fflush(stderr);
  // Last chance to persist evidence: the flight recorder's hook dumps the
  // protocol-event rings before the abort. The detector's internal mutex
  // may be held here, so hooks must not allocate or take locks.
  if (const LockOrderDieHook hook = g_die_hook.load(std::memory_order_acquire);
      hook != nullptr) {
    hook(report.c_str());
  }
  std::abort();
}

// True if `to` is reachable from `from` in the order graph. Caller holds
// registry().m. Iterative DFS; the graph is tiny (one node per lock class).
bool reachable(Registry& reg, std::uint32_t from, std::uint32_t to,
               std::vector<std::uint32_t>* path_out) {
  std::vector<std::uint32_t> stack{from};
  std::unordered_map<std::uint32_t, std::uint32_t> parent;  // child -> parent
  parent.emplace(from, 0);
  while (!stack.empty()) {
    const std::uint32_t node = stack.back();
    stack.pop_back();
    if (node == to) {
      if (path_out != nullptr) {
        path_out->clear();
        for (std::uint32_t n = to; n != 0; n = parent.at(n)) path_out->push_back(n);
        // path_out is to..from in reverse; flip to from..to.
        std::reverse(path_out->begin(), path_out->end());
      }
      return true;
    }
    auto it = reg.adj.find(node);
    if (it == reg.adj.end()) continue;
    for (std::uint32_t next : it->second) {
      if (parent.emplace(next, node).second) stack.push_back(next);
    }
  }
  return false;
}

// Checks ordering of a blocking acquisition and records new edges. Runs
// before m_.lock() so a genuine deadlock is still diagnosed rather than
// hanging silently.
void before_blocking_lock(const Mutex* mu, std::uint32_t cls, const char* name,
                          const std::source_location& loc) {
  auto& held = held_stack();
  for (const HeldLock& h : held) {
    if (h.mu == mu) {
      die("elan::Mutex: FATAL: recursive lock of \"" + std::string(name) + "\" at " +
          format_site(loc) + " — already acquired at " + format_site(h.loc) +
          "; elan::Mutex is non-recursive\n  held locks:\n" + format_held_stack(held));
    }
  }
  if (held.empty()) return;  // fast path: no ordering to record

  Registry& reg = registry();
  std::lock_guard<std::mutex> guard(reg.m);
  for (const HeldLock& h : held) {
    const std::uint64_t key = edge_key(h.cls, cls);
    if (reg.edge_stacks.count(key) != 0) continue;  // edge already recorded
    // Adding h.cls -> cls: a path cls ->* h.cls means the reverse order was
    // taken before — the two code paths can deadlock.
    std::vector<std::uint32_t> path;
    if (h.cls == cls || reachable(reg, cls, h.cls, &path)) {
      std::string report =
          "elan::Mutex: FATAL: lock-order inversion (potential deadlock)\n"
          "  this thread is acquiring \"" + std::string(name) + "\" at " +
          format_site(loc) + " while holding:\n" + format_held_stack(held);
      if (h.cls == cls) {
        report += "  two locks of class \"" + std::string(name) +
                  "\" nested — give peer instances distinct names or impose a "
                  "single-class order\n";
      } else {
        report += "  conflicting order \"" + reg.class_names[cls - 1] + "\" -> ... -> \"" +
                  reg.class_names[h.cls - 1] + "\" was recorded earlier:\n";
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          const std::uint64_t k = edge_key(path[i], path[i + 1]);
          report += "  edge \"" + reg.class_names[path[i] - 1] + "\" -> \"" +
                    reg.class_names[path[i + 1] - 1] + "\" recorded with held stack:\n" +
                    reg.edge_stacks[k];
        }
      }
      die(report);
    }
    reg.adj[h.cls].push_back(cls);
    reg.edge_stacks.emplace(
        key, format_held_stack(held) + "    then acquired \"" + name + "\" at " +
                 format_site(loc) + "\n");
  }
}

void note_acquired(const Mutex* mu, std::uint32_t cls, const char* name,
                   const std::source_location& loc) {
  held_stack().push_back(HeldLock{mu, cls, name, loc});
}

void note_released(const Mutex* mu, const char* name) {
  auto& held = held_stack();
  for (std::size_t i = held.size(); i-- > 0;) {
    if (held[i].mu == mu) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  die("elan::Mutex: FATAL: unlock of \"" + std::string(name) +
      "\" which this thread does not hold\n");
}

std::uint32_t register_class(const char* name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> guard(reg.m);
  auto it = reg.class_ids.find(name);
  if (it != reg.class_ids.end()) return it->second;
  reg.class_names.emplace_back(name);
  const auto id = static_cast<std::uint32_t>(reg.class_names.size());  // ids start at 1
  reg.class_ids.emplace(name, id);
  return id;
}

}  // namespace

bool lock_order_checks_enabled() { return kLockOrderChecks; }

LockOrderDieHook set_lock_order_die_hook(LockOrderDieHook hook) noexcept {
  return g_die_hook.exchange(hook, std::memory_order_acq_rel);
}

std::uint32_t this_thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

Mutex::Mutex(const char* name) : name_(name) {
  if (kLockOrderChecks) class_id_ = register_class(name);
}

Mutex::~Mutex() = default;

void Mutex::lock(std::source_location loc) {
  if (kLockOrderChecks) before_blocking_lock(this, class_id_, name_, loc);
  m_.lock();
  if (kLockOrderChecks) note_acquired(this, class_id_, name_, loc);
}

void Mutex::unlock() {
  if (kLockOrderChecks) note_released(this, name_);
  m_.unlock();
}

bool Mutex::try_lock(std::source_location loc) {
  if (!m_.try_lock()) return false;
  // try_lock cannot block, so it contributes no ordering edges; it still
  // goes on the held stack so later blocking acquisitions order against it.
  if (kLockOrderChecks) note_acquired(this, class_id_, name_, loc);
  return true;
}

void CondVar::wait(Mutex& mu) {
  // The mutex stays on the held stack across the wait: the capability is
  // logically held for the whole REQUIRES region even though the underlying
  // std::mutex is released while blocked.
  std::unique_lock<std::mutex> lk(mu.m_, std::adopt_lock);
  cv_.wait(lk);
  lk.release();
}

}  // namespace elan
