// Minimal command-line flag parser for the CLI tools.
//
// Supports --key=value, --key value and boolean --key. Unrecognised flags
// throw, values are type-checked, and `usage()` renders help from the
// registered flags. Deliberately tiny: the tools need a dozen flags, not a
// framework.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"

namespace elan {

class Flags {
 public:
  /// Registers a flag with a default value and a help line.
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Parses argv; throws InvalidArgument on unknown flags or missing values.
  /// Returns leftover positional arguments.
  std::vector<std::string> parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True when --help was passed.
  bool help_requested() const { return help_; }
  std::string usage(const std::string& program) const;

 private:
  struct Spec {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
  };
  std::map<std::string, Spec> specs_;
  std::vector<std::string> order_;
  bool help_ = false;

  const Spec& spec(const std::string& name) const;
};

/// Registers the uniform --log-level flag (trace|debug|info|warn|error|off).
/// The default comes from the ELAN_LOG environment variable when set, so the
/// precedence is: --log-level > ELAN_LOG > the logger's compiled default.
void define_log_level_flag(Flags& flags);

/// Applies a parsed --log-level to the global Logger; throws InvalidArgument
/// on an unrecognised level name.
void apply_log_level_flag(const Flags& flags);

}  // namespace elan
