#include "common/log.h"

#include <cstdio>

namespace elan {

namespace {

LogLevel g_level = LogLevel::kWarn;
Logger::Sink g_sink;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel Logger::level() { return g_level; }

void Logger::set_level(LogLevel level) { g_level = level; }

void Logger::set_sink(Sink sink) { g_sink = std::move(sink); }

void Logger::log(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace elan
