#include "common/log.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "common/sync.h"

namespace elan {

namespace {

// Relaxed ordering is enough: the level is a filter, not a synchronisation
// point, and log() below re-reads it anyway.
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

struct SinkState {
  Mutex mu{"logger"};
  Logger::Sink sink ELAN_GUARDED_BY(mu);
};

SinkState& sink_state() {
  static SinkState* state = new SinkState();  // leaked: loggable until the very end
  return *state;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

std::optional<LogLevel> parse_log_level(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

const char* to_string(LogLevel level) { return level_name(level); }

LogLevel Logger::level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Logger::set_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void Logger::init_from_env() {
  if (const char* env = std::getenv("ELAN_LOG"); env != nullptr && *env != '\0') {
    if (const auto parsed = parse_log_level(env)) set_level(*parsed);
  }
}

void Logger::set_sink(Sink sink) {
  auto& state = sink_state();
  MutexLock lock(state.mu);
  state.sink = std::move(sink);
}

std::string Logger::format_line(LogLevel level, const std::string& message) {
  // Wall-clock read is deliberate: this stamps the human-readable log prefix
  // only. Log text never feeds simulation state, fingerprints, or protocol
  // decisions (the sink receives it post-format), so real time is safe here.
  const auto now = std::chrono::system_clock::now();  // elan-analyze: allow(determinism)
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);  // elan-analyze: allow(determinism)
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  localtime_r(&secs, &tm);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%-5s %02d:%02d:%02d.%03d t%02u] ", level_name(level),
                tm.tm_hour, tm.tm_min, tm.tm_sec, static_cast<int>(ms),
                this_thread_index());
  return buf + message;
}

void Logger::log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  auto& state = sink_state();
  MutexLock lock(state.mu);
  if (state.sink) {
    state.sink(level, message);
    return;
  }
  std::fprintf(stderr, "%s\n", format_line(level, message).c_str());
}

}  // namespace elan
