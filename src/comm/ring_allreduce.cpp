#include "comm/ring_allreduce.h"

#include <algorithm>
#include <memory>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "topology/bandwidth.h"

namespace elan::comm {

namespace {

struct RunState {
  std::vector<std::vector<double>*> data;
  std::size_t chunk_len = 0;
  int n = 0;
  Seconds step_time = 0;  // synchronous step duration (slowest ring edge)
  Seconds started_at = 0;
  std::function<void()> done;
};

std::pair<std::size_t, std::size_t> chunk_range(const RunState& s, int chunk) {
  const std::size_t len = s.data.front()->size();
  const auto begin = std::min(len, static_cast<std::size_t>(chunk) * s.chunk_len);
  const auto end = std::min(len, begin + s.chunk_len);
  return {begin, end};
}

/// Runs `fn(rank)` for every rank, fanning out across the thread pool when
/// the per-rank chunks are big enough to pay for the dispatch. Within one
/// step every rank touches a distinct (dst, chunk) range, so the per-rank
/// work is independent and the reduction order per element is unchanged —
/// results stay bit-identical to the serial loop.
void for_each_rank(const RunState& s, const std::function<void(int)>& fn) {
  constexpr std::size_t kParallelChunkLen = 4096;
  if (s.chunk_len < kParallelChunkLen) {
    for (int r = 0; r < s.n; ++r) fn(r);
    return;
  }
  ThreadPool::global().parallel_for(0, s.n, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t r = b; r < e; ++r) fn(static_cast<int>(r));
  });
}

/// One reduce-scatter step: rank r adds its chunk (r - step) into neighbour
/// (r+1)'s copy.
void reduce_scatter_step(RunState& s, int step) {
  const int n = s.n;
  // Snapshot the outgoing chunks first (all sends happen "simultaneously").
  std::vector<std::vector<double>> outgoing(static_cast<std::size_t>(n));
  for_each_rank(s, [&](int r) {
    const int chunk = ((r - step) % n + n) % n;
    const auto [b, e] = chunk_range(s, chunk);
    outgoing[static_cast<std::size_t>(r)].assign(s.data[static_cast<std::size_t>(r)]->begin() +
                                                     static_cast<std::ptrdiff_t>(b),
                                                 s.data[static_cast<std::size_t>(r)]->begin() +
                                                     static_cast<std::ptrdiff_t>(e));
  });
  for_each_rank(s, [&](int r) {
    const int dst = (r + 1) % n;
    const int chunk = ((r - step) % n + n) % n;
    const auto [b, e] = chunk_range(s, chunk);
    auto& dv = *s.data[static_cast<std::size_t>(dst)];
    const auto& src = outgoing[static_cast<std::size_t>(r)];
    for (std::size_t i = b; i < e; ++i) dv[i] += src[i - b];
  });
}

/// One allgather step: rank r overwrites neighbour (r+1)'s chunk
/// (r + 1 - step) with its own (already complete) copy.
void allgather_step(RunState& s, int step) {
  const int n = s.n;
  std::vector<std::vector<double>> outgoing(static_cast<std::size_t>(n));
  for_each_rank(s, [&](int r) {
    const int chunk = ((r + 1 - step) % n + n) % n;
    const auto [b, e] = chunk_range(s, chunk);
    outgoing[static_cast<std::size_t>(r)].assign(s.data[static_cast<std::size_t>(r)]->begin() +
                                                     static_cast<std::ptrdiff_t>(b),
                                                 s.data[static_cast<std::size_t>(r)]->begin() +
                                                     static_cast<std::ptrdiff_t>(e));
  });
  for_each_rank(s, [&](int r) {
    const int dst = (r + 1) % n;
    const int chunk = ((r + 1 - step) % n + n) % n;
    const auto [b, e] = chunk_range(s, chunk);
    auto& dv = *s.data[static_cast<std::size_t>(dst)];
    const auto& src = outgoing[static_cast<std::size_t>(r)];
    for (std::size_t i = b; i < e; ++i) dv[i] = src[i - b];
  });
}

}  // namespace

void RingAllreduce::run(std::vector<std::vector<double>*> per_rank,
                        std::function<void()> done, Bytes bytes_per_element) {
  require(per_rank.size() == static_cast<std::size_t>(group_->size()),
          "ring allreduce: one vector per group member required");
  require(!per_rank.empty() && per_rank.front() != nullptr, "ring allreduce: null input");
  const std::size_t len = per_rank.front()->size();
  for (auto* v : per_rank) {
    require(v != nullptr && v->size() == len, "ring allreduce: length mismatch");
  }

  const int n = group_->size();
  if (n == 1 || len == 0) {
    last_duration_ = 0;
    transfers_ = 0;
    sim_->schedule(0.0, std::move(done));
    return;
  }

  auto state = std::make_shared<RunState>();
  state->data = std::move(per_rank);
  state->n = n;
  state->chunk_len = (len + static_cast<std::size_t>(n) - 1) / static_cast<std::size_t>(n);
  state->started_at = sim_->now();
  state->done = std::move(done);

  // Synchronous steps: every rank sends one chunk per step; the step lasts as
  // long as the slowest ring edge needs for one chunk.
  const Bytes chunk_bytes = state->chunk_len * bytes_per_element;
  const auto& ring = group_->ring();
  const auto* bandwidth = &group_->bandwidth();
  Seconds slowest = 0;
  for (int r = 0; r < n; ++r) {
    const auto level = group_->topology().link_level(
        ring[static_cast<std::size_t>(r)], ring[static_cast<std::size_t>((r + 1) % n)]);
    slowest = std::max(slowest, bandwidth->transfer_time(level, chunk_bytes));
  }
  state->step_time = slowest;
  transfers_ = static_cast<std::uint64_t>(n) * (2u * static_cast<std::uint64_t>(n) - 2u);

  // Schedule the 2(N-1) steps back to back.
  auto run_step = std::make_shared<std::function<void(int)>>();
  *run_step = [this, state, run_step](int step) {
    const int n_ = state->n;
    if (step < n_ - 1) {
      reduce_scatter_step(*state, step);
    } else {
      allgather_step(*state, step - (n_ - 1));
    }
    if (obs::Tracer::enabled()) {
      // This callback runs at the *end* of the step, so the span covers the
      // preceding [now - step_time, now) virtual interval. Explicit sim-time
      // timestamps — the tracer clock is bypassed on purpose.
      obs::Tracer::instance().complete(
          "comm", step < n_ - 1 ? "reduce_scatter" : "allgather",
          (sim_->now() - state->step_time) * 1e6, state->step_time * 1e6,
          "{\"step\":" + std::to_string(step) + "}");
    }
    if (step + 1 == 2 * (n_ - 1)) {
      // This callback runs at the end of the final step: all time charged.
      last_duration_ = sim_->now() - state->started_at;
      if (obs::Tracer::enabled()) {
        obs::Tracer::instance().complete("comm", "ring_allreduce", state->started_at * 1e6,
                                         last_duration_ * 1e6,
                                         "{\"ranks\":" + std::to_string(n_) + "}");
      }
      static auto& runs_total = obs::MetricsRegistry::instance().counter(
          "elan_ring_allreduce_runs_total", "Completed simulated ring allreduces");
      static auto& duration_hist = obs::MetricsRegistry::instance().histogram(
          "elan_ring_allreduce_duration_seconds",
          obs::MetricsRegistry::latency_seconds_bounds(),
          "Simulated ring allreduce durations");
      runs_total.add(1);
      duration_hist.observe(last_duration_);
      sim_->schedule(0.0, [state] { state->done(); });
      return;
    }
    sim_->schedule(state->step_time, [run_step, step] { (*run_step)(step + 1); });
  };
  sim_->schedule(state->step_time, [run_step] { (*run_step)(0); });
}

}  // namespace elan::comm
