// Communication groups and collective cost models.
//
// Elan targets data-parallel training with collective communication (ring
// allreduce a la NCCL/Horovod). The group tracks its member GPUs, derives the
// ring order and bottleneck link from the topology, and prices allreduce /
// broadcast operations with the standard alpha-beta model:
//
//   T_allreduce(S) = 2 (N-1) alpha  +  2 (N-1)/N * S / B_bottleneck
//
// Group (re)construction cost models NCCL communicator initialisation, which
// is the dominant "init" term the asynchronous coordination mechanism hides.
#pragma once

#include <vector>

#include "common/units.h"
#include "topology/bandwidth.h"
#include "topology/topology.h"

namespace elan::comm {

struct GroupParams {
  /// Fixed communicator bootstrap cost plus a per-rank term. Elan
  /// reconstructs groups from live processes that already hold bootstrap
  /// state, so this is much cheaper than a cold NCCL init from new
  /// processes (that cold cost is part of engine initialisation).
  Seconds reconstruct_fixed = 0.3;
  Seconds reconstruct_per_rank = 0.01;
};

class CommGroup {
 public:
  CommGroup(const topo::Topology& topology, const topo::BandwidthModel& bandwidth,
            std::vector<topo::GpuId> members, GroupParams params = {});

  const std::vector<topo::GpuId>& members() const { return members_; }
  int size() const { return static_cast<int>(members_.size()); }
  bool contains(topo::GpuId gpu) const;

  const topo::Topology& topology() const { return *topology_; }
  const topo::BandwidthModel& bandwidth() const { return *bandwidth_; }

  /// Ring order used for collectives: members sorted by GPU id, which groups
  /// switch-, socket- and node-local GPUs together (topology-aware ring).
  const std::vector<topo::GpuId>& ring() const { return members_; }

  /// Slowest link level on the ring (determines achievable bus bandwidth).
  topo::LinkLevel bottleneck_level() const { return bottleneck_; }

  /// Ring allreduce time for a payload of `size` bytes.
  Seconds allreduce_time(Bytes size) const;

  /// Broadcast from one member to all others (binomial tree over the
  /// bottleneck link).
  Seconds broadcast_time(Bytes size) const;

  /// Barrier (latency-only allreduce).
  Seconds barrier_time() const;

  /// Cost of constructing a communicator over `n` ranks.
  Seconds reconstruct_time(int n) const;
  Seconds reconstruct_time() const { return reconstruct_time(size()); }

  /// New group with a different member set (communication-group
  /// reconstruction after a resource adjustment, paper step 5).
  CommGroup reconstructed(std::vector<topo::GpuId> new_members) const;

 private:
  const topo::Topology* topology_;
  const topo::BandwidthModel* bandwidth_;
  std::vector<topo::GpuId> members_;
  GroupParams params_;
  topo::LinkLevel bottleneck_ = topo::LinkLevel::kL1;

  void compute_bottleneck();
};

/// Functional allreduce over per-rank vectors; used by the training engines
/// to keep replica state bit-identical (sum reduction). All vectors must have
/// the same length. Returns the element-wise sum written back to every rank.
void allreduce_sum(std::vector<std::vector<double>*> per_rank);

}  // namespace elan::comm
