#include "comm/ps_model.h"

#include <algorithm>

#include "common/error.h"

namespace elan::comm {

Seconds PsModel::sync_time(Bytes payload, int workers) const {
  require(workers > 0, "ps: non-positive workers");
  require(params_.num_servers > 0, "ps: non-positive servers");
  const auto& net = bandwidth_->params(topo::LinkLevel::kL4);
  const double shard = static_cast<double>(payload) / params_.num_servers;

  // Worker side: push S + pull S through its own NIC (sharded across
  // servers, so the per-flow size is S/servers but the volume is 2S).
  const double worker_bw =
      bandwidth_->effective_bandwidth(topo::LinkLevel::kL4, static_cast<Bytes>(shard) + 1);
  const Seconds worker_side = 2.0 * static_cast<double>(payload) / worker_bw;

  // Server side: each server NIC carries its shard from/to *every* worker:
  // 2 * (S/servers) * workers bytes. This is the term that grows linearly
  // with the worker count — the bottleneck.
  const Seconds server_side = 2.0 * shard * workers / worker_bw;

  // Host-memory aggregation: each server applies its shard's updates from
  // every worker (servers run in parallel).
  const Seconds cpu =
      params_.server_cpu_seconds_per_gib * (shard * workers / static_cast<double>(1_GiB));

  return net.latency * 2.0 + std::max(worker_side, server_side) + cpu;
}

BytesPerSecond PsModel::effective_bandwidth(Bytes payload, int workers) const {
  const Seconds t = sync_time(payload, workers);
  if (t <= 0) return 0;
  return static_cast<double>(payload) / t;
}

}  // namespace elan::comm
