// Executable ring allreduce.
//
// CommGroup prices collectives analytically; this class actually *runs* one:
// it partitions per-rank vectors into N chunks and performs the classic
// 2(N-1)-step ring (N-1 reduce-scatter steps + N-1 allgather steps),
// scheduling every chunk transfer on the discrete-event simulator with the
// same link/bandwidth model the rest of the system uses. It serves three
// purposes:
//   1. the data plane demonstrably computes correct sums (tests reduce real
//      vectors and compare against a sequential reference);
//   2. the analytic cost model is cross-validated against executed time;
//   3. it documents precisely which transfer crosses which link at each step
//      (the bottleneck-link reasoning behind the throughput model).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "comm/group.h"
#include "sim/simulator.h"

namespace elan::comm {

class RingAllreduce {
 public:
  RingAllreduce(sim::Simulator& simulator, const CommGroup& group)
      : sim_(&simulator), group_(&group) {}

  /// Sum-allreduces `per_rank` (one vector per group member, equal lengths,
  /// element i of rank r corresponds to element i everywhere) in place.
  /// `done` fires when the collective completes; the virtual time elapsed is
  /// the executed cost. Element size defaults to fp32 gradients.
  void run(std::vector<std::vector<double>*> per_rank, std::function<void()> done,
           Bytes bytes_per_element = 4);

  /// Executed duration of the most recent completed run.
  Seconds last_duration() const { return last_duration_; }
  /// Number of point-to-point chunk transfers the run performed.
  std::uint64_t transfers() const { return transfers_; }

 private:
  sim::Simulator* sim_;
  const CommGroup* group_;
  Seconds last_duration_ = 0;
  std::uint64_t transfers_ = 0;
};

}  // namespace elan::comm
