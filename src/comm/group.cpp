#include "comm/group.h"

#include <algorithm>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace elan::comm {

CommGroup::CommGroup(const topo::Topology& topology, const topo::BandwidthModel& bandwidth,
                     std::vector<topo::GpuId> members, GroupParams params)
    : topology_(&topology), bandwidth_(&bandwidth), members_(std::move(members)),
      params_(params) {
  require(!members_.empty(), "CommGroup: empty member set");
  std::sort(members_.begin(), members_.end());
  require(std::adjacent_find(members_.begin(), members_.end()) == members_.end(),
          "CommGroup: duplicate members");
  compute_bottleneck();
}

bool CommGroup::contains(topo::GpuId gpu) const {
  return std::binary_search(members_.begin(), members_.end(), gpu);
}

void CommGroup::compute_bottleneck() {
  bottleneck_ = topo::LinkLevel::kL1;
  const int n = size();
  if (n < 2) return;
  for (int i = 0; i < n; ++i) {
    const topo::GpuId a = members_[static_cast<std::size_t>(i)];
    const topo::GpuId b = members_[static_cast<std::size_t>((i + 1) % n)];
    const auto level = topology_->link_level(a, b);
    if (static_cast<int>(level) > static_cast<int>(bottleneck_)) bottleneck_ = level;
  }
}

Seconds CommGroup::allreduce_time(Bytes size) const {
  const int n = this->size();
  if (n < 2) return 0.0;
  const auto& p = bandwidth_->params(bottleneck_);
  const double steps = 2.0 * (n - 1);
  const double chunk = static_cast<double>(size) / n;
  const double bw = bandwidth_->effective_bandwidth(bottleneck_, static_cast<Bytes>(chunk) + 1);
  return steps * p.latency + steps * chunk / bw;
}

Seconds CommGroup::broadcast_time(Bytes size) const {
  const int n = this->size();
  if (n < 2) return 0.0;
  const auto& p = bandwidth_->params(bottleneck_);
  // Binomial tree: ceil(log2(n)) rounds, each moving the full payload.
  int rounds = 0;
  for (int v = 1; v < n; v <<= 1) ++rounds;
  const double bw = bandwidth_->effective_bandwidth(bottleneck_, size);
  return rounds * (p.latency + static_cast<double>(size) / bw);
}

Seconds CommGroup::barrier_time() const {
  const int n = this->size();
  if (n < 2) return 0.0;
  const auto& p = bandwidth_->params(bottleneck_);
  return 2.0 * (n - 1) * p.latency;
}

Seconds CommGroup::reconstruct_time(int n) const {
  require(n > 0, "reconstruct_time: non-positive rank count");
  return params_.reconstruct_fixed + params_.reconstruct_per_rank * n;
}

CommGroup CommGroup::reconstructed(std::vector<topo::GpuId> new_members) const {
  return CommGroup(*topology_, *bandwidth_, std::move(new_members), params_);
}

void allreduce_sum(std::vector<std::vector<double>*> per_rank) {
  require(!per_rank.empty(), "allreduce_sum: no ranks");
  ELAN_TRACE_SCOPE("comm", "allreduce_sum");
  const std::size_t n = per_rank.front()->size();
  for (auto* v : per_rank) {
    require(v != nullptr && v->size() == n, "allreduce_sum: rank size mismatch");
  }
  std::vector<double> sum(n, 0.0);
  // Chunk-parallel reduce: element ranges are independent, and within a
  // chunk every element still accumulates over ranks in ascending rank
  // order, so the result is bit-identical to the serial reduction at any
  // thread count.
  ThreadPool::global().parallel_for(
      0, static_cast<std::int64_t>(n), 1 << 15, [&](std::int64_t b, std::int64_t e) {
        for (const auto* v : per_rank) {
          const double* src = v->data();
          for (std::int64_t i = b; i < e; ++i) sum[static_cast<std::size_t>(i)] += src[i];
        }
      });
  for (auto* v : per_rank) *v = sum;
}

}  // namespace elan::comm
