// Parameter-server communication cost model.
//
// The paper's related-work argument (§I, §VII): PS-based elastic systems
// (Litz, Cruise, DL2) simplify state management — all state lives in a set
// of central CPU servers — but "PS can suffer from the communication
// bottleneck in large-scale training". This model quantifies that: per
// iteration every worker pushes gradients and pulls parameters through the
// server NICs, whose aggregate ingress/egress grows linearly with the worker
// count, while ring allreduce stays ~constant per link.
#pragma once

#include "common/units.h"
#include "topology/bandwidth.h"

namespace elan::comm {

struct PsParams {
  /// Number of parameter-server processes (the keyspace is sharded evenly).
  int num_servers = 4;
  /// CPU-side aggregation cost per byte per worker (the servers apply
  /// updates in host memory).
  double server_cpu_seconds_per_gib = 0.02;
};

class PsModel {
 public:
  PsModel(const topo::BandwidthModel& bandwidth, PsParams params = {})
      : bandwidth_(&bandwidth), params_(params) {}

  const PsParams& params() const { return params_; }

  /// Time for one synchronous PS round (push gradients + pull parameters)
  /// with `workers` workers and a `payload`-byte model.
  Seconds sync_time(Bytes payload, int workers) const;

  /// The equivalent bus bandwidth the PS round achieves (payload/time), for
  /// apples-to-apples comparison with allreduce.
  BytesPerSecond effective_bandwidth(Bytes payload, int workers) const;

 private:
  const topo::BandwidthModel* bandwidth_;
  PsParams params_;
};

}  // namespace elan::comm
