// The elastic-training experiment of paper §VI-B.
//
// AdaBatch-style training of ResNet-50 on ImageNet: start with a total batch
// of 512, double it every 30 epochs, finish after 90. Three configurations:
//
//   "512 (16)"           — static: TBS 512 on 16 workers for 90 epochs
//                          (accuracy and static-training baseline).
//   "512-2048 (Elastic)" — dynamic batch with Elan elasticity: 16 workers ->
//                          32 at epoch 30 -> 64 at epoch 60, following the
//                          strong-scaling optima (Fig 17); the LR doubles
//                          with the batch and ramps over 100 iterations.
//   "512-2048 (64)"      — dynamic batch on *fixed* 64 workers, showing that
//                          elastic algorithms need resource elasticity.
//
// The driver combines the throughput model (epoch durations, adjustment
// pauses from the cost model) and the convergence model (top-1 accuracy) to
// produce the time/accuracy trajectories behind Fig 18, Fig 19 and Table IV.
#pragma once

#include <string>
#include <vector>

#include "baselines/adjustment_cost.h"
#include "train/convergence.h"
#include "train/throughput.h"

namespace elan::experiments {

struct EpochPoint {
  int epoch = 0;
  int workers = 0;
  int total_batch = 0;
  double lr = 0;
  Seconds epoch_time = 0;   // duration of this epoch (incl. adjustment costs)
  Seconds end_time = 0;     // cumulative wall time at epoch end
  double accuracy = 0;      // top-1 at epoch end
};

struct AdaBatchRun {
  std::string name;
  std::vector<EpochPoint> points;
  bool diverged = false;

  double final_accuracy() const { return points.back().accuracy; }
  Seconds total_time() const { return points.back().end_time; }

  /// First wall-clock time at which the end-of-epoch accuracy reaches
  /// `target`; negative if never reached.
  Seconds time_to_accuracy(double target) const;
};

class AdaBatchExperiment {
 public:
  AdaBatchExperiment(const train::ThroughputModel& throughput,
                     const baselines::AdjustmentCostModel& costs);

  /// Static reference: TBS 512 on 16 workers.
  AdaBatchRun run_static() const;

  /// Elastic: batch doubles at epochs 30/60, workers follow the Fig 17
  /// optima via Elan (adjustment pauses included).
  AdaBatchRun run_elastic() const;

  /// Dynamic batch on fixed 64 workers.
  AdaBatchRun run_fixed64() const;

  std::vector<AdaBatchRun> run_all() const;

 private:
  const train::ThroughputModel* throughput_;
  const baselines::AdjustmentCostModel* costs_;
  train::ModelSpec model_;
  train::ConvergenceModel convergence_;

  struct Phase {
    int epochs;
    int total_batch;
    int workers;
  };
  AdaBatchRun run_schedule(const std::string& name, const std::vector<Phase>& phases,
                           bool elastic_adjustments) const;
};

}  // namespace elan::experiments
