#include "experiments/adabatch.h"

#include "common/error.h"

namespace elan::experiments {

Seconds AdaBatchRun::time_to_accuracy(double target) const {
  for (const auto& p : points) {
    if (p.accuracy >= target) return p.end_time;
  }
  return -1.0;
}

AdaBatchExperiment::AdaBatchExperiment(const train::ThroughputModel& throughput,
                                       const baselines::AdjustmentCostModel& costs)
    : throughput_(&throughput),
      costs_(&costs),
      model_(train::resnet50()),
      convergence_(train::ConvergenceModel::resnet50_imagenet()) {}

AdaBatchRun AdaBatchExperiment::run_schedule(const std::string& name,
                                             const std::vector<Phase>& phases,
                                             bool elastic_adjustments) const {
  require(!phases.empty(), "adabatch: empty schedule");

  // Build the convergence plan: LR follows the linear-scaling reference for
  // the batch, with the standard x0.1 decays at epochs 30/60 and a ramped
  // x2 jump wherever the batch doubles.
  std::vector<train::EpochPlan> plan;
  std::vector<EpochPoint> points;
  int epoch = 0;
  int prev_batch = phases.front().total_batch;
  for (const auto& phase : phases) {
    for (int e = 0; e < phase.epochs; ++e, ++epoch) {
      train::EpochPlan p;
      p.total_batch = phase.total_batch;
      const double decay = epoch >= 60 ? 0.01 : (epoch >= 30 ? 0.1 : 1.0);
      p.lr = 0.1 * phase.total_batch / 256.0 * decay;
      if (e == 0 && phase.total_batch != prev_batch) {
        p.lr_jump = static_cast<double>(phase.total_batch) / prev_batch;
        p.ramped = true;
        p.ramp_iterations = 100;  // paper: finish the adjustment in 100 iters
      }
      plan.push_back(p);

      EpochPoint point;
      point.epoch = epoch;
      point.workers = phase.workers;
      point.total_batch = phase.total_batch;
      point.lr = p.lr;
      points.push_back(point);
    }
    prev_batch = phase.total_batch;
  }

  const auto conv = convergence_.simulate(plan);

  AdaBatchRun run;
  run.name = name;
  run.diverged = conv.diverged;
  const double samples = static_cast<double>(model_.dataset.num_samples);
  Seconds clock = 0;
  int prev_workers = phases.front().workers;
  for (std::size_t i = 0; i < points.size(); ++i) {
    auto point = points[i];
    const double overhead = costs_->runtime_overhead(
        baselines::System::kElan, model_, point.workers, point.total_batch);
    const double tput =
        throughput_->throughput(model_, point.workers, point.total_batch) *
        (1.0 - overhead);
    point.epoch_time = samples / tput;
    if (elastic_adjustments && point.workers != prev_workers) {
      // The new workers start asynchronously while the previous epoch's
      // tail still trains; only the Elan pause lands on the critical path.
      point.epoch_time += costs_->pause_time(baselines::System::kElan,
                                             AdjustmentType::kScaleOut, model_,
                                             prev_workers, point.workers);
    }
    prev_workers = point.workers;
    clock += point.epoch_time;
    point.end_time = clock;
    point.accuracy = conv.accuracy[i];
    run.points.push_back(point);
  }
  return run;
}

AdaBatchRun AdaBatchExperiment::run_static() const {
  return run_schedule("512 (16)", {{90, 512, 16}}, false);
}

AdaBatchRun AdaBatchExperiment::run_elastic() const {
  return run_schedule("512-2048 (Elastic)",
                      {{30, 512, 16}, {30, 1024, 32}, {30, 2048, 64}}, true);
}

AdaBatchRun AdaBatchExperiment::run_fixed64() const {
  return run_schedule("512-2048 (64)",
                      {{30, 512, 64}, {30, 1024, 64}, {30, 2048, 64}}, false);
}

std::vector<AdaBatchRun> AdaBatchExperiment::run_all() const {
  return {run_static(), run_elastic(), run_fixed64()};
}

}  // namespace elan::experiments
