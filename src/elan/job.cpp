#include "elan/job.h"

#include <algorithm>

#include "common/error.h"
#include "common/log.h"
#include "common/serialize.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "topology/topology.h"

namespace elan {

const char* to_string(Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kElan: return "Elan";
    case Mechanism::kShutdownRestart: return "S&R";
  }
  return "?";
}

const char* to_string(DataSemantics semantics) {
  switch (semantics) {
    case DataSemantics::kSerial: return "serial";
    case DataSemantics::kChunk: return "chunk";
  }
  return "?";
}

ElasticJob::ElasticJob(sim::Simulator& simulator, const topo::Topology& topology,
                       const topo::BandwidthModel& bandwidth,
                       storage::SimFilesystem& filesystem, transport::MessageBus& bus,
                       transport::KvStore& kv, JobConfig config,
                       memory::MemoryPool* memory_pool)
    : sim_(simulator),
      topology_(topology),
      bandwidth_(bandwidth),
      fs_(filesystem),
      bus_(bus),
      kv_(kv),
      config_(std::move(config)),
      rng_(config_.seed),
      throughput_(topology, bandwidth),
      hybrid_(throughput_, config_.model, config_.hybrid),
      planner_(topology, bandwidth),
      sampler_(config_.model.dataset),
      lr_controller_(train::StepSchedule(config_.base_lr, config_.lr_milestones)),
      total_batch_(config_.initial_total_batch) {
  memory_pool_ = memory_pool;
  require(config_.initial_workers > 0, "job: need at least one worker");
  require(config_.initial_workers <= topology_.total_gpus(), "job: more workers than GPUs");
  require(config_.coordination_interval > 0, "job: coordination interval must be positive");
  require(throughput_.fits(config_.model, config_.initial_workers, total_batch_),
          "job: initial batch does not fit");

  if (config_.data_semantics == DataSemantics::kChunk) {
    chunk_sampler_ = std::make_unique<data::ChunkSampler>(
        config_.model.dataset, config_.chunk_size, config_.initial_workers);
  }

  if (config_.initial_gpus.empty()) {
    for (int i = 0; i < config_.initial_workers; ++i) {
      config_.initial_gpus.push_back(static_cast<topo::GpuId>(i));
    }
  }
  require(config_.initial_gpus.size() == static_cast<std::size_t>(config_.initial_workers),
          "job: initial_gpus size mismatch");
  std::vector<WorkerLaunchSpec> initial;
  for (int i = 0; i < config_.initial_workers; ++i) {
    initial.push_back({i, config_.initial_gpus[static_cast<std::size_t>(i)]});
  }
  master_ = std::make_unique<ApplicationMaster>(bus_, kv_, config_.job_id, initial,
                                                config_.am);
  attach_master_listener();
  sched_endpoint_ = std::make_unique<transport::ReliableEndpoint>(
      bus_, "sched/" + config_.job_id, [this](const transport::Message& msg) {
        if (msg.type == "adjust_reply") {
          on_adjust_reply(AdjustReplyMsg::deserialize(msg.payload));
        } else {
          log_warn() << config_.job_id << ": scheduler got unexpected " << msg.type;
        }
      });
  allocated_batch_ =
      (total_batch_ + config_.initial_workers - 1) / config_.initial_workers;
  for (const auto& spec : initial) {
    allocate_worker_memory(spec.worker, spec.gpu);
    workers_.emplace(spec.worker, make_worker(spec.worker, spec.gpu, /*running=*/true));
  }
}

void ElasticJob::allocate_worker_memory(int worker, topo::GpuId gpu) {
  if (memory_pool_ == nullptr) return;
  auto& device = memory_pool_->device(gpu);
  WorkerAllocations a;
  a.gpu = gpu;
  a.state = device.allocate(config_.job_id + "/w" + std::to_string(worker) + "/state",
                            config_.model.gpu_state_bytes());
  a.workspace =
      device.allocate(config_.job_id + "/w" + std::to_string(worker) + "/workspace",
                      config_.model.workspace_bytes(allocated_batch_));
  allocations_.emplace(worker, a);
}

void ElasticJob::free_worker_memory(int worker) {
  if (memory_pool_ == nullptr) return;
  auto it = allocations_.find(worker);
  ELAN_CHECK(it != allocations_.end(), "memory accounting lost worker");
  auto& device = memory_pool_->device(it->second.gpu);
  device.free(it->second.state);
  device.free(it->second.workspace);
  allocations_.erase(it);
}

void ElasticJob::resize_workspaces() {
  if (memory_pool_ == nullptr) return;
  const int batch = per_worker_batch();
  if (batch == allocated_batch_) return;
  allocated_batch_ = batch;
  for (auto& [worker, a] : allocations_) {
    auto& device = memory_pool_->device(a.gpu);
    device.free(a.workspace);
    a.workspace =
        device.allocate(config_.job_id + "/w" + std::to_string(worker) + "/workspace",
                        config_.model.workspace_bytes(batch));
  }
}

ElasticJob::~ElasticJob() {
  // Return all device memory to a shared pool (it outlives the job).
  if (memory_pool_ != nullptr) {
    for (const auto& [worker, a] : allocations_) {
      memory_pool_->device(a.gpu).free(a.state);
      memory_pool_->device(a.gpu).free(a.workspace);
    }
  }
}

std::unique_ptr<WorkerProcess> ElasticJob::make_worker(int id, topo::GpuId gpu,
                                                       bool already_running) {
  auto w = std::make_unique<WorkerProcess>(sim_, bus_, config_.job_id, id, gpu, config_.model,
                                           config_.engine, config_.worker_params, rng_.fork(),
                                           already_running, config_.engine_factory);
  register_loader_hook(*w);
  return w;
}

void ElasticJob::register_loader_hook(WorkerProcess& worker) {
  // The sampler is logically global (one loader view for the whole job);
  // each worker exposes it through its own hook so replication and
  // checkpointing carry it like any other state (Table II: CPU-resident).
  // Under serial semantics the state is a single cursor; under chunk
  // semantics it is the whole record table — the contrast of Fig 13.
  if (config_.data_semantics == DataSemantics::kChunk) {
    worker.hooks().register_hook(StateHook{
        "data_loader", StateLocation::kCpu,
        config_.worker_params.loader_state_bytes + chunk_sampler_->state_bytes(),
        [this] { return Blob("data_loader", chunk_sampler_->serialize_state()); },
        [this](const Blob& b) { chunk_sampler_->restore_state(b.bytes()); }});
    return;
  }
  worker.hooks().register_hook(StateHook{
      "data_loader", StateLocation::kCpu, config_.worker_params.loader_state_bytes,
      [this] {
        BinaryWriter w;
        const auto s = sampler_.state();
        w.write(s.epoch);
        w.write(s.cursor);
        return Blob("data_loader", w.take());
      },
      [this](const Blob& b) {
        BinaryReader r(b.bytes());
        data::SerialSampler::State s;
        s.epoch = r.read<std::uint64_t>();
        s.cursor = r.read<std::uint64_t>();
        sampler_.restore(s);
      }});
}

void ElasticJob::start() {
  require(!running_, "job already started");
  running_ = true;
  begin_iteration();
}

std::vector<int> ElasticJob::worker_ids() const {
  std::vector<int> ids;
  ids.reserve(workers_.size());
  for (const auto& [id, w] : workers_) ids.push_back(id);
  return ids;
}

const WorkerProcess& ElasticJob::worker(int id) const {
  auto it = workers_.find(id);
  if (it == workers_.end()) throw NotFound("worker " + std::to_string(id));
  return *it->second;
}

std::vector<std::uint64_t> ElasticJob::worker_checksums() const {
  std::vector<std::uint64_t> sums;
  sums.reserve(workers_.size());
  for (const auto& [id, w] : workers_) sums.push_back(w->state_checksum());
  return sums;
}

bool ElasticJob::consistent() const {
  const auto sums = worker_checksums();
  return std::adjacent_find(sums.begin(), sums.end(), std::not_equal_to<>()) == sums.end();
}

void ElasticJob::set_worker_slowdown(int worker, double factor) {
  require(factor >= 1.0, "set_worker_slowdown: factor must be >= 1");
  require(workers_.count(worker) > 0, "set_worker_slowdown: unknown worker");
  if (factor == 1.0) {
    slowdown_.erase(worker);
  } else {
    slowdown_[worker] = factor;
  }
}

double ElasticJob::worker_slowdown(int worker) const {
  auto it = slowdown_.find(worker);
  return it == slowdown_.end() ? 1.0 : it->second;
}

Seconds ElasticJob::repartition_cost() const {
  if (!chunk_sampler_) return 0.0;
  // Record-table scan/rebalance plus a control-plane sync round.
  return 0.002 + 1e-7 * static_cast<double>(chunk_sampler_->num_chunks());
}

Seconds ElasticJob::current_iteration_time() const {
  const int n = num_workers();
  const int per_worker = (total_batch_ + n - 1) / n;
  const Seconds full = throughput_.iteration_time(config_.model, n, per_worker);
  const Seconds compute = throughput_.compute_time(config_.model, per_worker);
  const Seconds engine_overhead = workers_.begin()->second->engine().per_iteration_overhead();
  // Synchronous allreduce: the slowest replica's compute paces the barrier.
  double straggle = 1.0;
  for (const auto& [id, w] : workers_) straggle = std::max(straggle, worker_slowdown(id));
  return compute * straggle + (full - compute) + engine_overhead;
}

std::uint64_t ElasticJob::gradient_seed(const data::SampleRange& range) const {
  // All replicas of an iteration must derive the same seed: it encodes the
  // globally-agreed data range (the simulated analogue of allreduce).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = (h ^ sampler_.epoch()) * 0x100000001b3ULL;
  h = (h ^ range.begin) * 0x100000001b3ULL;
  h = (h ^ range.end) * 0x100000001b3ULL;
  return h;
}

void ElasticJob::fail_worker(int worker) {
  require(workers_.count(worker) > 0, "fail_worker: unknown worker");
  auto& w = *workers_.at(worker);
  // If the dead worker owes the current coordination round a decision, the
  // round must not wait for it forever.
  const bool owed_decision = w.has_pending_decision();
  w.shutdown();
  pending_failures_.push_back(worker);
  if (owed_decision && decisions_outstanding_ > 0) {
    if (--decisions_outstanding_ == 0) on_all_decisions();
  }
}

bool ElasticJob::fault_kill_worker(int worker) {
  auto it = workers_.find(worker);
  if (it != workers_.end()) {
    if (it->second->state() == WorkerState::kStopped) return false;  // already dead
    // Never orphan the job: at least one live replica must survive to source
    // state from. Workers already promised to leave in the AM's pending plan
    // do not count as survivors — the plan will remove them regardless.
    std::set<int> leaving;
    if (!master_->idle()) {
      for (int v : master_->plan().leave) leaving.insert(v);
    }
    int survivors = 0;
    for (const auto& [id, w] : workers_) {
      if (id != worker && w->state() != WorkerState::kStopped && leaving.count(id) == 0) {
        ++survivors;
      }
    }
    if (survivors == 0) return false;
    fail_worker(worker);
    return true;
  }
  auto jt = joining_.find(worker);
  if (jt == joining_.end() || jt->second->state() == WorkerState::kStopped) return false;
  // A joining worker is not in the communication group yet; killing it only
  // strands its join — report-timeout eviction or the failed-join tolerance
  // in finish_adjustment reaps it.
  jt->second->shutdown();
  return true;
}

void ElasticJob::reconcile_joining() {
  if (joining_.empty()) return;
  // Live entries are orphans only once no adjustment can still admit them:
  // the AM is back in Steady (e.g. it aborted a plan whose joins all timed
  // out) and no service request is in flight.
  const bool orphaned = master_->idle() && requests_in_flight_ == 0;
  for (auto it = joining_.begin(); it != joining_.end();) {
    const bool dead = it->second->state() == WorkerState::kStopped;
    if (!dead && !orphaned) {
      ++it;
      continue;
    }
    log_warn() << config_.job_id << ": reaping " << (dead ? "dead" : "orphaned")
               << " joining worker " << it->first;
    if (!dead) it->second->shutdown();
    free_worker_memory(it->first);
    it = joining_.erase(it);
  }
}

void ElasticJob::process_pending_failures() {
  if (pending_failures_.empty()) return;
  int removed = 0;
  for (int victim : pending_failures_) {
    auto it = workers_.find(victim);
    if (it == workers_.end()) continue;  // already left via an adjustment
    workers_.erase(it);
    slowdown_.erase(victim);
    free_worker_memory(victim);
    master_->remove_failed(victim);
    ++removed;
    ++worker_failures_;
    log_warn() << config_.job_id << ": worker " << victim
               << " fail-stopped; continuing with " << workers_.size() << " replicas";
  }
  pending_failures_.clear();
  if (workers_.empty()) {
    // Every replica is gone (a failure raced an adjustment that removed the
    // rest): the job cannot continue, but the *process* must not die — stop
    // cleanly and let the owner decide (a real deployment would restart from
    // a checkpoint).
    fatal_failure_ = true;
    running_ = false;
    log_error() << config_.job_id << ": all replicas lost; stopping";
    if (on_stopped) on_stopped();
    return;
  }
  if (removed == 0) {
    // All "failures" had already left through an adjustment; just continue.
    sim_.schedule(0.0, [this] { begin_iteration(); });
    return;
  }
  // Survivors rebuild the communication group, then training resumes.
  // The total batch is kept (strong scaling): work redistributes through the
  // global serial cursor / chunk repartition automatically.
  if (chunk_sampler_) chunk_sampler_->repartition(num_workers());
  resize_workspaces();
  const Seconds reconstruct = config_.group_params.reconstruct_fixed +
                              config_.group_params.reconstruct_per_rank * num_workers();
  sim_.schedule(reconstruct + repartition_cost(), [this] { begin_iteration(); });
}

void ElasticJob::begin_iteration() {
  if (!running_) return;
  if (stop_requested_ || (stop_at_iteration_ != 0 && iteration_ >= stop_at_iteration_)) {
    running_ = false;
    if (on_stopped) on_stopped();
    return;
  }
  if (!pending_failures_.empty()) {
    process_pending_failures();
    return;  // resumes via the scheduled reconstruction
  }
  if (iteration_ % config_.coordination_interval == 0) {
    coordinate_round();
  } else {
    train_step();
  }
}

void ElasticJob::coordinate_round() {
  reconcile_joining();
  decisions_outstanding_ = static_cast<int>(workers_.size());
  adjust_signalled_ = false;
  obs::FlightRecorder::record(obs::FlightEventKind::kRoundStart,
                              config_.job_id.c_str(), nullptr, iteration_,
                              static_cast<std::uint64_t>(workers_.size()));
  const Seconds round_started = sim_.now();
  for (auto& [id, worker] : workers_) {
    const int worker_id = id;
    worker->coordinate(iteration_, [this, worker_id, round_started](
                                       const DecisionMsg& decision) {
      if (obs::Tracer::enabled()) {
        // Sim-time span per worker, on a per-worker tid lane: the round is a
        // fan-out, so the overlap (and any straggling reply) is visible.
        obs::Tracer::instance().complete(
            "coordination", "round", round_started * 1e6,
            (sim_.now() - round_started) * 1e6,
            "{\"worker\":" + std::to_string(worker_id) +
                ",\"iteration\":" + std::to_string(iteration_) +
                ",\"adjust\":" + (decision.adjust ? "true" : "false") + "}",
            static_cast<std::uint64_t>(worker_id));
      }
      obs::FlightRecorder::record(obs::FlightEventKind::kRoundDecision,
                                  config_.job_id.c_str(), nullptr, iteration_,
                                  static_cast<std::uint64_t>(worker_id),
                                  decision.adjust ? 1 : 0);
      if (decision.adjust) {
        adjust_signalled_ = true;
        signalled_plan_ = decision.plan;
      }
      if (--decisions_outstanding_ == 0) on_all_decisions();
    });
  }
}

void ElasticJob::on_all_decisions() {
  obs::FlightRecorder::record(obs::FlightEventKind::kRoundComplete,
                              config_.job_id.c_str(), nullptr, iteration_,
                              adjust_signalled_ ? 1 : 0);
  if (adjust_signalled_) {
    perform_adjustment(signalled_plan_);
  } else {
    train_step();
  }
}

ElasticJob::IterationData ElasticJob::consume_iteration_data() {
  IterationData data;
  if (config_.data_semantics == DataSemantics::kChunk) {
    // Each worker (rank order) draws its share from its own chunks; near the
    // epoch end some workers run dry earlier (fragmentation).
    const auto per_worker =
        static_cast<std::uint64_t>((total_batch_ + num_workers() - 1) / num_workers());
    std::uint64_t mix = 0xcbf29ce484222325ULL ^ chunk_sampler_->epoch();
    for (int rank = 0; rank < num_workers(); ++rank) {
      const auto r = chunk_sampler_->next_batch(rank, per_worker);
      data.consumed += r.size();
      data.shards.push_back(r);
      mix = (mix ^ r.begin) * 0x100000001b3ULL;
      mix = (mix ^ r.end) * 0x100000001b3ULL;
    }
    if (data.consumed == 0) {
      chunk_sampler_->begin_next_epoch();
      return consume_iteration_data();
    }
    data.seed = mix;
    return data;
  }

  auto range = sampler_.next_batch(static_cast<std::uint64_t>(total_batch_));
  if (range.empty()) {
    sampler_.begin_next_epoch();
    range = sampler_.next_batch(static_cast<std::uint64_t>(total_batch_));
  }
  data.seed = gradient_seed(range);
  data.consumed = range.size();
  // Serial semantics: the global contiguous range splits into contiguous
  // per-worker shards in rank order.
  const int n = num_workers();
  const auto per_worker = (range.size() + static_cast<std::uint64_t>(n) - 1) /
                          static_cast<std::uint64_t>(n);
  for (int r = 0; r < n; ++r) {
    const auto begin = std::min(range.end, range.begin + per_worker * static_cast<std::uint64_t>(r));
    const auto end = std::min(range.end, begin + per_worker);
    data.shards.push_back(data::SampleRange{begin, end});
  }
  return data;
}

Seconds ElasticJob::worker_compute_time(int worker) {
  const Seconds base =
      throughput_.compute_time(config_.model, per_worker_batch()) * worker_slowdown(worker);
  if (config_.compute_jitter_cv <= 0.0) return base;
  return base * rng_.truncated_normal(1.0, config_.compute_jitter_cv, 0.5, 2.0);
}

Seconds ElasticJob::post_barrier_time() const {
  // Exposed allreduce (whatever backward could not hide) plus the engine's
  // per-iteration host overhead.
  const int n = num_workers();
  const Seconds full = throughput_.iteration_time(config_.model, n, per_worker_batch());
  const Seconds compute = throughput_.compute_time(config_.model, per_worker_batch());
  const Seconds engine_overhead = workers_.begin()->second->engine().per_iteration_overhead();
  return (full - compute) + engine_overhead;
}

void ElasticJob::train_step() {
  ideal_training_time_ += current_iteration_time();
  // Each worker computes at its own pace; the allreduce barrier waits for
  // the slowest replica, then the exposed communication completes the
  // iteration (synchronous data parallelism).
  compute_outstanding_ = static_cast<int>(workers_.size());
  for (auto& [id, worker] : workers_) {
    sim_.schedule(worker_compute_time(id), [this]() {
      if (--compute_outstanding_ > 0) return;
      sim_.schedule(post_barrier_time(), [this]() { finish_train_step(); });
    });
  }
}

void ElasticJob::finish_train_step() {
  const auto data = consume_iteration_data();
  samples_processed_ += data.consumed;
  // Epoch must be read *after* the consume: on turnover the ranges belong to
  // the new epoch the sampler just began.
  if (on_data_consumed) on_data_consumed(epoch(), data.shards);
  const double lr = lr_controller_.lr(iteration_);

  // Local forward/backward on every replica's shard.
  int rank = 0;
  for (auto& [id, worker] : workers_) {
    worker->engine().compute_gradients(data.seed, data.shards[static_cast<std::size_t>(rank++)]);
  }
  // Gradient allreduce for engines that expose real gradient buffers
  // (cost-modelled engines synchronise through the shared seed instead).
  std::vector<std::vector<double>*> grads;
  for (auto& [id, worker] : workers_) {
    if (auto* g = worker->engine().mutable_gradients()) grads.push_back(g);
  }
  if (grads.size() == workers_.size() && grads.size() > 1) {
    comm::allreduce_sum(grads);
    const double n = static_cast<double>(grads.size());
    for (auto* g : grads) {
      for (auto& v : *g) v /= n;
    }
  }
  // Identical update everywhere.
  for (auto& [id, worker] : workers_) {
    worker->engine().apply_update(data.seed, lr);
    worker->engine().bump_iteration();
  }

  ++iteration_;
  if (on_iteration) on_iteration(iteration_);
  begin_iteration();
}

void ElasticJob::crash_master() { master_->crash(); }

void ElasticJob::recover_master() {
  master_.reset();  // release the endpoint name before re-attaching
  master_ = ApplicationMaster::recover(bus_, kv_, config_.job_id, config_.am);
  attach_master_listener();
}

void ElasticJob::attach_master_listener() {
  master_->set_phase_listener([this](AmPhase from, AmPhase to) {
    if (on_am_phase) on_am_phase(from, to);
  });
}

void ElasticJob::send_adjust_request(AdjustRequestMsg msg) {
  last_request_time_ = sim_.now();
  msg.request_id = next_request_id_++;
  ++requests_in_flight_;
  outstanding_requests_.insert(msg.request_id);
  obs::FlightRecorder::record(obs::FlightEventKind::kAdjustSent,
                              config_.job_id.c_str(), to_string(msg.type),
                              msg.request_id);
  sched_endpoint_->send(master_->name(), "adjust_request", msg.serialize());
  arm_adjust_resend(std::move(msg));
}

void ElasticJob::arm_adjust_resend(AdjustRequestMsg msg) {
  // The transport retries the *request* until acked, but an AM crash between
  // ack and reply destroys the reply's retry state — without this timer the
  // request would stay in flight forever. Re-sends reuse the request id, so
  // the AM replays its cached verdict instead of re-executing.
  const auto id = msg.request_id;
  adjust_resend_timers_[id] = sim_.schedule(
      config_.adjust_reply_timeout, [this, msg = std::move(msg)]() mutable {
        adjust_resend_timers_.erase(msg.request_id);
        if (!running_ || outstanding_requests_.count(msg.request_id) == 0) return;
        log_debug() << config_.job_id << ": no reply for adjust request " << msg.request_id
                    << " after " << config_.adjust_reply_timeout << "s; re-sending";
        sched_endpoint_->send(master_->name(), "adjust_request", msg.serialize());
        arm_adjust_resend(std::move(msg));
      });
}

void ElasticJob::on_adjust_reply(const AdjustReplyMsg& reply) {
  auto timer = adjust_resend_timers_.find(reply.request_id);
  if (timer != adjust_resend_timers_.end()) {
    sim_.cancel(timer->second);
    adjust_resend_timers_.erase(timer);
  }
  if (outstanding_requests_.erase(reply.request_id) == 0) {
    // Duplicate reply: the request was resent across an AM recovery (the
    // recovered endpoint has no duplicate-suppression state) and processed
    // twice — the second processing is rejected by the AM and must not
    // disturb the in-flight accounting here.
    obs::FlightRecorder::record(obs::FlightEventKind::kAdjustReply,
                                config_.job_id.c_str(), nullptr,
                                reply.request_id, reply.ok ? 1 : 0,
                                /*duplicate=*/1);
    log_debug() << config_.job_id << ": duplicate reply for request "
                << reply.request_id << " ignored";
    return;
  }
  --requests_in_flight_;
  obs::FlightRecorder::record(obs::FlightEventKind::kAdjustReply,
                              config_.job_id.c_str(), nullptr, reply.request_id,
                              reply.ok ? 1 : 0, /*duplicate=*/0);
  if (!reply.ok) {
    log_warn() << config_.job_id << ": adjustment request " << reply.request_id
               << " rejected: " << reply.error;
    return;
  }
  // Step 1 continued: "It also launches new workers if any."
  for (const auto& [id, gpu] : reply.launch) {
    allocate_worker_memory(id, gpu);
    auto w = make_worker(id, gpu, /*running=*/false);
    if (on_worker_launched) on_worker_launched(*w);
    w->launch();
    joining_.emplace(id, std::move(w));
  }
}

void ElasticJob::request_scale_out(const std::vector<topo::GpuId>& gpus) {
  AdjustRequestMsg msg;
  msg.type = AdjustmentType::kScaleOut;
  msg.gpus = gpus;
  send_adjust_request(std::move(msg));
}

void ElasticJob::request_scale_in(const std::vector<int>& victims) {
  AdjustRequestMsg msg;
  msg.type = AdjustmentType::kScaleIn;
  msg.victims = victims;
  send_adjust_request(std::move(msg));
}

void ElasticJob::request_migration(const std::vector<int>& victims,
                                   const std::vector<topo::GpuId>& target_gpus) {
  AdjustRequestMsg msg;
  msg.type = AdjustmentType::kMigrate;
  msg.victims = victims;
  msg.gpus = target_gpus;
  send_adjust_request(std::move(msg));
}

void ElasticJob::perform_adjustment(const AdjustmentPlan& plan) {
  // A failure between plan admission and execution can shrink the cluster so
  // that the plan's leave set now retires every remaining replica (e.g. a
  // kill racing an in-flight scale-in). Executing it would train with zero
  // workers; honour the retirement and stop cleanly instead.
  const int workers_after = num_workers() + static_cast<int>(plan.join.size()) -
                            static_cast<int>(plan.leave.size());
  if (workers_after <= 0) {
    log_error() << config_.job_id << ": adjustment v" << plan.version
                << " would leave no replicas (concurrent failures); retiring the job";
    master_->on_adjustment_complete({});
    for (int v : plan.leave) {
      auto it = workers_.find(v);
      if (it == workers_.end()) continue;
      it->second->shutdown();
      free_worker_memory(it->first);
      workers_.erase(it);
    }
    fatal_failure_ = true;
    running_ = false;
    if (on_stopped) on_stopped();
    return;
  }

  obs::FlightRecorder::record(obs::FlightEventKind::kAdjustStart,
                              config_.job_id.c_str(), to_string(plan.type),
                              plan.version,
                              static_cast<std::uint64_t>(num_workers()),
                              static_cast<std::uint64_t>(workers_after));
  AdjustmentRecord record;
  record.type = plan.type;
  record.plan_version = plan.version;
  record.workers_before = num_workers();
  record.total_batch_before = total_batch_;
  record.requested_at = last_request_time_;
  record.started_at = sim_.now();

  if (config_.mechanism == Mechanism::kElan) {
    execute_elan_adjustment(std::move(record), plan);
  } else {
    execute_snr_adjustment(std::move(record), plan);
  }
}

// Live state of one chunk-pipelined replication. The canonical serialized
// stream is produced once (all replicas are bit-identical); each destination
// owns a receive buffer sized once up front, into which chunk slices land in
// stream order. Relay transfers read out of the *peer's buffer*, not the
// canonical stream, so a prefix-tracking bug corrupts the final checksum
// instead of hiding.
struct ElasticJob::ReplicationSession {
  std::uint32_t num_chunks = 0;
  std::shared_ptr<const std::vector<std::uint8_t>> stream;  // allocated once
  std::uint64_t stream_checksum = 0;  // full FNV over the stream, computed once
  struct Dest {
    std::vector<std::uint8_t> buffer;
    std::uint32_t verified = 0;  // chunks held == verified-prefix length
    bool lost = false;           // source died mid-stream; resume pending
    bool done = false;           // full stream checksummed and loaded
  };
  std::map<int, Dest> dests;
  ReplicationStats stats;

  /// Stored-byte range of `chunk`: the scaled stream is cut proportionally
  /// into num_chunks slices (nominal chunk sizes time the schedule; slices
  /// move the real bytes).
  std::pair<std::size_t, std::size_t> slice(std::uint32_t chunk) const {
    const std::size_t stored = stream->size();
    return {stored * chunk / num_chunks, stored * (chunk + 1) / num_chunks};
  }
};

void ElasticJob::schedule_chunk_round(const std::shared_ptr<ReplicationSession>& session,
                                      const ChunkSchedule& schedule) {
  const Seconds base = sim_.now();
  for (const auto& t : schedule.transfers) {
    sim_.schedule(t.finish(), [this, session, t, base] {
      apply_replication_chunk(session, t, base);
    });
  }
}

void ElasticJob::apply_replication_chunk(const std::shared_ptr<ReplicationSession>& session,
                                         const ChunkTransfer& transfer, Seconds round_base) {
  auto dit = session->dests.find(transfer.dest_worker);
  if (dit == session->dests.end()) return;
  auto& dest = dit->second;
  if (dest.done || dest.lost) return;
  auto dst = joining_.find(transfer.dest_worker);
  if (dst == joining_.end() || dst->second->state() == WorkerState::kStopped) {
    dest.lost = true;  // the destination itself died — a failed join
    return;
  }
  ELAN_DCHECK(dest.verified == transfer.chunk, "chunk replication: out-of-order delivery");

  // Resolve the source bytes: a replica streams from the canonical serialized
  // state; a relay destination serves out of its own verified prefix.
  std::span<const std::uint8_t> source_bytes;
  bool from_relay = false;
  if (auto src = workers_.find(transfer.source_worker);
      src != workers_.end() && src->second->state() != WorkerState::kStopped) {
    source_bytes = *session->stream;
  } else if (auto peer = session->dests.find(transfer.source_worker);
             peer != session->dests.end() && peer->second.verified > transfer.chunk &&
             joining_.count(transfer.source_worker) &&
             joining_.at(transfer.source_worker)->state() != WorkerState::kStopped) {
    source_bytes = peer->second.buffer;
    from_relay = true;
  } else {
    // The source fail-stopped (or, for a relay, its prefix died with it):
    // everything up to `verified` stays good; the suffix is re-planned when
    // this round's window closes.
    dest.lost = true;
    obs::FlightRecorder::record(obs::FlightEventKind::kChunkSourceLost,
                                config_.job_id.c_str(), nullptr, transfer.chunk,
                                static_cast<std::uint64_t>(transfer.dest_worker),
                                static_cast<std::uint64_t>(transfer.source_worker));
    if (obs::Tracer::enabled()) {
      obs::Tracer::instance().instant(
          "fault", "chunk_source_lost",
          "{\"src\":" + std::to_string(transfer.source_worker) +
              ",\"dst\":" + std::to_string(transfer.dest_worker) +
              ",\"chunk\":" + std::to_string(transfer.chunk) + "}");
    }
    return;
  }

  const auto [begin, end] = session->slice(transfer.chunk);
  std::copy(source_bytes.begin() + static_cast<std::ptrdiff_t>(begin),
            source_bytes.begin() + static_cast<std::ptrdiff_t>(end),
            dest.buffer.begin() + static_cast<std::ptrdiff_t>(begin));
  // Per-chunk integrity: a sampled fingerprint on the hot path (the full FNV
  // scan per transfer the old executor paid is now one scan per destination,
  // at completion). Sanitize/debug builds keep the full per-chunk scan.
  const auto src_slice = source_bytes.subspan(begin, end - begin);
  const auto dst_slice = std::span<const std::uint8_t>(dest.buffer).subspan(begin, end - begin);
  ELAN_CHECK(quick_fingerprint(dst_slice) == quick_fingerprint(src_slice),
             "replication chunk fingerprint mismatch");
#if defined(ELAN_SANITIZE_BUILD) || !defined(NDEBUG)
  ELAN_CHECK(fnv1a(dst_slice) == fnv1a(src_slice), "replication chunk checksum mismatch");
#endif
  ++dest.verified;
  ++session->stats.chunks_copied;
  if (from_relay) ++session->stats.chunks_relayed;
  obs::FlightRecorder::record(obs::FlightEventKind::kChunkVerified,
                              config_.job_id.c_str(), nullptr, transfer.chunk,
                              static_cast<std::uint64_t>(transfer.dest_worker),
                              static_cast<std::uint64_t>(transfer.source_worker));

  if (obs::Tracer::enabled()) {
    obs::Tracer::instance().complete(
        "replication", "chunk", (round_base + transfer.start) * 1e6, transfer.duration * 1e6,
        "{\"src\":" + std::to_string(transfer.source_worker) +
            ",\"dst\":" + std::to_string(transfer.dest_worker) +
            ",\"chunk\":" + std::to_string(transfer.chunk) + ",\"link\":\"" +
            obs::json_escape(topo::to_string(transfer.level)) +
            "\",\"relay\":" + (transfer.relay ? "true" : "false") + "}",
        static_cast<std::uint64_t>(transfer.dest_worker));
  }
}

void ElasticJob::execute_elan_adjustment(AdjustmentRecord record, const AdjustmentPlan& plan) {
  const int workers_after = num_workers() + static_cast<int>(plan.join.size()) -
                            static_cast<int>(plan.leave.size());
  const auto decision = hybrid_.decide(num_workers(), total_batch_, workers_after);

  // Step 4 (Fig 2): concurrent IO-free state replication, chunk-pipelined.
  Seconds replication_time = 0;
  std::shared_ptr<ReplicationSession> session;
  if (!plan.join.empty()) {
    ReplicationRequest request;
    for (const auto& [id, w] : workers_) request.existing.emplace(id, w->gpu());
    for (const auto& [id, gpu] : plan.join) request.joining.emplace(id, gpu);
    const auto& any_worker = *workers_.begin()->second;
    request.gpu_state_bytes = any_worker.gpu_state_bytes();
    request.cpu_state_bytes = any_worker.cpu_state_bytes();
    ChunkPlanOptions chunk_options;
    chunk_options.chunk_bytes = config_.replication_chunk_bytes;
    chunk_options.relay_sources = config_.replication_relay;
    const auto schedule = planner_.chunk_plan(request, chunk_options);
    replication_time = schedule.total_time;

    session = std::make_shared<ReplicationSession>();
    session->num_chunks = schedule.num_chunks;
    session->stream = std::make_shared<const std::vector<std::uint8_t>>(
        any_worker.hooks().save_all().serialize());
    session->stream_checksum = fnv1a(*session->stream);
    session->stats.num_chunks = schedule.num_chunks;
    for (const auto& [id, gpu] : plan.join) {
      session->dests[id].buffer.assign(session->stream->size(), 0);
    }
    schedule_chunk_round(session, schedule);

    if (obs::Tracer::enabled()) {
      // One aggregated sim-time span per destination (first chunk start to
      // completion), laid out on the destination worker's tid lane: streams
      // over distinct links overlap — the concurrency §IV-3 claims over
      // serial replication — while the per-chunk spans above show the
      // interleaving inside each stream.
      const Seconds base = sim_.now();
      auto& tracer = obs::Tracer::instance();
      for (const auto& [dest, gpu] : request.joining) {
        Seconds first = replication_time;
        int source = -1;
        for (const auto& t : schedule.transfers) {
          if (t.dest_worker != dest) continue;
          if (t.chunk == 0) source = t.source_worker;
          first = std::min(first, t.start);
        }
        tracer.complete(
            "replication", "transfer", (base + first) * 1e6,
            (schedule.completion.at(dest) - first) * 1e6,
            "{\"src\":" + std::to_string(source) + ",\"dst\":" + std::to_string(dest) +
                ",\"chunks\":" + std::to_string(schedule.num_chunks) +
                ",\"gpu_bytes\":" + std::to_string(request.gpu_state_bytes) + "}",
            static_cast<std::uint64_t>(dest));
      }
    }
  }
  record.breakdown.replication = replication_time;
  if (on_adjustment_started) on_adjustment_started(plan.type, replication_time);

  // Step 5: state adjustment — communication-group reconstruction; data
  // repartition is free under serial semantics (the cursor is global) but
  // costs a record-table rework under chunk semantics.
  const Seconds reconstruct = config_.group_params.reconstruct_fixed +
                              config_.group_params.reconstruct_per_rank * workers_after;
  record.breakdown.reconstruct = reconstruct;
  record.breakdown.repartition = repartition_cost();

  sim_.schedule(replication_time, [this, record = std::move(record), plan, decision,
                                   session = std::move(session)]() mutable {
    complete_elan_replication(std::move(record), std::move(plan), decision,
                              std::move(session));
  });
}

void ElasticJob::complete_elan_replication(AdjustmentRecord record, AdjustmentPlan plan,
                                           ScalingDecision decision,
                                           std::shared_ptr<ReplicationSession> session) {
  // Destinations holding the full verified stream finalise: one full FNV
  // checksum proves byte identity with the canonical stream (the per-chunk
  // hot path only sampled), then the state loads into the worker's hooks.
  // Destinations whose source fail-stopped mid-stream kept their verified
  // prefix; only the missing suffix is re-planned, from any surviving
  // replica — including joiners that already completed this round.
  std::vector<int> resume;
  if (session) {
    for (auto& [dest_id, dest] : session->dests) {
      if (dest.done) continue;
      auto dst = joining_.find(dest_id);
      if (dst == joining_.end() || dst->second->state() == WorkerState::kStopped) {
        continue;  // the destination itself died — a failed join, nothing to redo
      }
      if (dest.verified >= session->num_chunks) {
        ELAN_CHECK(fnv1a(dest.buffer) == session->stream_checksum,
                   "replicated state differs from the canonical stream");
        dst->second->hooks().load_all(StateSnapshot::deserialize(dest.buffer));
        dest.done = true;
      } else {
        resume.push_back(dest_id);
      }
    }
  }

  if (!resume.empty()) {
    ReplicationRequest request;
    for (const auto& [id, w] : workers_) {
      if (w->state() != WorkerState::kStopped) request.existing.emplace(id, w->gpu());
    }
    for (const auto& [id, dest] : session->dests) {
      if (!dest.done) continue;
      auto jt = joining_.find(id);
      if (jt != joining_.end() && jt->second->state() != WorkerState::kStopped) {
        request.existing.emplace(id, jt->second->gpu());
      }
    }
    ELAN_CHECK(!request.existing.empty(), "replication re-plan: no surviving replica");
    ChunkPlanOptions chunk_options;
    chunk_options.chunk_bytes = config_.replication_chunk_bytes;
    chunk_options.relay_sources = config_.replication_relay;
    std::uint32_t kept = 0;
    for (int dest_id : resume) {
      auto& dest = session->dests.at(dest_id);
      request.joining.emplace(dest_id, joining_.at(dest_id)->gpu());
      chunk_options.verified[dest_id] = dest.verified;
      kept += dest.verified;
      dest.lost = false;
    }
    const int first_source = request.existing.begin()->first;
    const auto& survivor = workers_.count(first_source) ? *workers_.at(first_source)
                                                        : *joining_.at(first_source);
    request.gpu_state_bytes = survivor.gpu_state_bytes();
    request.cpu_state_bytes = survivor.cpu_state_bytes();
    const auto redo = planner_.chunk_plan(request, chunk_options);
    ++session->stats.replans;
    session->stats.chunks_resumed += kept;
    obs::FlightRecorder::record(obs::FlightEventKind::kReplicationReplan,
                                config_.job_id.c_str(), nullptr,
                                static_cast<std::uint64_t>(resume.size()), kept,
                                session->stats.replans);
    record.breakdown.replication += redo.total_time;
    log_warn() << config_.job_id << ": replication source died mid-transfer; resuming "
               << resume.size() << " destination(s) from " << kept
               << " verified chunk(s) (+" << redo.total_time << "s)";
    if (obs::Tracer::enabled()) {
      obs::Tracer::instance().instant(
          "fault", "replication_replanned",
          "{\"destinations\":" + std::to_string(resume.size()) +
              ",\"resumed_chunks\":" + std::to_string(kept) +
              ",\"extra_seconds\":" + std::to_string(redo.total_time) + "}");
    }
    // The resume round has its own window and can itself lose a source.
    schedule_chunk_round(session, redo);
    sim_.schedule(redo.total_time,
                  [this, record = std::move(record), plan = std::move(plan), decision,
                   session = std::move(session)]() mutable {
      complete_elan_replication(std::move(record), std::move(plan), decision,
                                std::move(session));
    });
    return;
  }

  if (session) record.replication_stats = session->stats;
  sim_.schedule(record.breakdown.reconstruct + record.breakdown.repartition,
                [this, record = std::move(record), plan = std::move(plan),
                 decision]() mutable {
    finish_adjustment(std::move(record), plan, decision.batch_factor, decision.total_batch);
  });
}

void ElasticJob::execute_snr_adjustment(AdjustmentRecord record, const AdjustmentPlan& plan) {
  const int workers_after = num_workers() + static_cast<int>(plan.join.size()) -
                            static_cast<int>(plan.leave.size());
  const auto decision = hybrid_.decide(num_workers(), total_batch_, workers_after);
  if (on_adjustment_started) on_adjustment_started(plan.type, 0.0);
  auto& any_worker = *workers_.begin()->second;
  const Bytes gpu_bytes = any_worker.gpu_state_bytes();

  // Checkpoint: rank 0 copies GPU state to host and writes everything to the
  // shared filesystem.
  const auto snapshot = any_worker.hooks().save_all();
  const Seconds write_time = fs_.write(checkpoint_path(), snapshot.serialize());
  record.breakdown.checkpoint = bandwidth_.host_device_copy_time(gpu_bytes) + write_time;

  const bool is_migration = plan.type == AdjustmentType::kMigrate;
  if (is_migration) {
    // Existing workers are discarded, so S&R benefits from the asynchronous
    // start of the replacements (already launched at request time): only
    // checkpoint + load remain on the critical path (§VI-A2).
    record.breakdown.shutdown = 0;
    record.breakdown.start = 0;
    record.breakdown.init = 0;
  } else {
    // Scale-out/in: every surviving worker is shut down and restarted with
    // the new configuration — squarely on the critical path.
    record.breakdown.shutdown = config_.worker_params.shutdown_time;
    Seconds max_start = 0;
    const int restarted = static_cast<int>(workers_.size()) -
                          static_cast<int>(plan.leave.size());
    for (int i = 0; i < restarted; ++i) {
      max_start = std::max(
          max_start, rng_.truncated_normal(config_.worker_params.start_mean,
                                           config_.worker_params.start_stddev,
                                           config_.worker_params.start_mean * 0.5,
                                           config_.worker_params.start_mean * 2.0));
    }
    record.breakdown.start = max_start;
    record.breakdown.init = any_worker.engine().initialization_time();
  }

  // All post-adjustment workers read the checkpoint concurrently and copy it
  // back to their GPUs.
  record.breakdown.load = fs_.concurrent_read_time(workers_after, snapshot.stored_bytes() +
                                                                      gpu_bytes) +
                          bandwidth_.host_device_copy_time(gpu_bytes);
  record.breakdown.reconstruct = config_.group_params.reconstruct_fixed +
                                 config_.group_params.reconstruct_per_rank * workers_after;
  record.breakdown.repartition = repartition_cost();

  // Restore every worker (new and surviving) from the checkpoint bytes.
  const auto& stored = fs_.read(checkpoint_path());
  const auto loaded = StateSnapshot::deserialize(stored);
  for (auto& [id, w] : joining_) w->hooks().load_all(loaded);
  for (auto& [id, w] : workers_) w->hooks().load_all(loaded);

  const Seconds total = record.breakdown.total();
  sim_.schedule(total, [this, record = std::move(record), plan, decision]() mutable {
    finish_adjustment(std::move(record), plan, decision.batch_factor, decision.total_batch);
  });
}

void ElasticJob::finish_adjustment(AdjustmentRecord record, const AdjustmentPlan& plan,
                                   double batch_factor, int new_total_batch) {
  // Remove leaving workers (straggler markings and GPU memory go with them).
  // A victim may already be gone if it fail-stopped in the meantime.
  for (int victim : plan.leave) {
    auto it = workers_.find(victim);
    if (it == workers_.end()) continue;
    it->second->shutdown();
    workers_.erase(it);
    slowdown_.erase(victim);
    free_worker_memory(victim);
  }
  // Admit joining workers. A join can fail underway — the process died
  // mid-launch or mid-replication — and must be dropped, not admitted: the
  // adjustment completes with the survivors and the AM is told which joins
  // never materialised.
  std::vector<int> failed_joins;
  for (const auto& [id, gpu] : plan.join) {
    auto it = joining_.find(id);
    if (it == joining_.end()) {
      failed_joins.push_back(id);
      continue;
    }
    if (it->second->state() != WorkerState::kReady) {
      log_warn() << config_.job_id << ": joining worker " << id << " is "
                 << to_string(it->second->state()) << " at admission; dropping it";
      it->second->shutdown();
      joining_.erase(it);
      free_worker_memory(id);
      failed_joins.push_back(id);
      continue;
    }
    it->second->set_training();
    workers_.emplace(id, std::move(it->second));
    joining_.erase(it);
  }
  // Anything still in joining_ was evicted from the plan before completion
  // (report-timeout at the AM): it never became part of the group.
  for (auto it = joining_.begin(); it != joining_.end();) {
    log_warn() << config_.job_id << ": discarding evicted joining worker " << it->first;
    it->second->shutdown();
    free_worker_memory(it->first);
    it = joining_.erase(it);
  }

  // Data repartition (step 5): free for the serial cursor; the chunk record
  // table reassigns its remaining fragments to the new worker set.
  if (chunk_sampler_) chunk_sampler_->repartition(num_workers());

  // Hybrid scaling: adjust the batch size now and ramp the LR progressively.
  total_batch_ = new_total_batch;
  resize_workspaces();
  if (batch_factor != 1.0) {
    lr_controller_.apply_scaling(batch_factor, iteration_, config_.hybrid.ramp_iterations);
  }
  record.lr_factor = batch_factor;
  record.workers_after = num_workers();
  record.total_batch_after = total_batch_;
  record.completed_at = sim_.now();
  adjustments_.push_back(record);
  obs::FlightRecorder::record(obs::FlightEventKind::kAdjustFinish,
                              config_.job_id.c_str(), to_string(record.type),
                              record.plan_version,
                              static_cast<std::uint64_t>(record.workers_after),
                              static_cast<std::uint64_t>(failed_joins.size()));

  if (obs::Tracer::enabled()) {
    auto& tracer = obs::Tracer::instance();
    // Whole-adjustment span first: category/name "adjustment"/"adjustment"
    // is the key elan_trace_report uses for critical-path shares.
    tracer.complete(
        "adjustment", "adjustment", record.started_at * 1e6, record.pause_time() * 1e6,
        std::string("{\"type\":\"") + to_string(record.type) +
            "\",\"mechanism\":\"" + to_string(config_.mechanism) +
            "\",\"workers\":\"" + std::to_string(record.workers_before) + "->" +
            std::to_string(record.workers_after) + "\"}");
    // Then the breakdown as back-to-back spans in total()'s field order —
    // the phases are modelled as sequential, so this reconstructs the
    // paper's Fig 10/11 stacked timeline.
    const std::pair<const char*, Seconds> phases[] = {
        {"checkpoint", record.breakdown.checkpoint},
        {"shutdown", record.breakdown.shutdown},
        {"start", record.breakdown.start},
        {"init", record.breakdown.init},
        {"load", record.breakdown.load},
        {"replication", record.breakdown.replication},
        {"reconstruct", record.breakdown.reconstruct},
        {"repartition", record.breakdown.repartition},
    };
    Seconds at = record.started_at;
    for (const auto& [name, dur] : phases) {
      if (dur <= 0) continue;
      tracer.complete("adjustment", name, at * 1e6, dur * 1e6);
      at += dur;
    }
  }
  static auto& adjustments_total = obs::MetricsRegistry::instance().counter(
      "elan_adjustments_total", "Completed resource adjustments");
  static auto& pause_hist = obs::MetricsRegistry::instance().histogram(
      "elan_adjustment_pause_seconds", obs::MetricsRegistry::latency_seconds_bounds(),
      "Training pause per adjustment (the paper's Fig 15 metric)");
  adjustments_total.add(1);
  pause_hist.observe(record.pause_time());

  master_->on_adjustment_complete(failed_joins);
  log_info() << config_.job_id << ": " << to_string(record.type) << " "
             << record.workers_before << "->" << record.workers_after << " in "
             << record.pause_time() << "s (mechanism " << to_string(config_.mechanism)
             << ")";
  begin_iteration();
}

}  // namespace elan
