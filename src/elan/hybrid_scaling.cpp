#include "elan/hybrid_scaling.h"

#include "common/error.h"

namespace elan {

HybridScaling::HybridScaling(const train::ThroughputModel& throughput,
                             const train::ModelSpec& model, HybridScalingParams params)
    : throughput_(&throughput), model_(model), params_(params) {}

ScalingDecision HybridScaling::decide(int workers_before, int total_batch_before,
                                      int workers_after) const {
  require(workers_before > 0 && workers_after > 0, "decide: bad worker counts");
  require(total_batch_before > 0, "decide: bad batch size");

  ScalingDecision d;
  d.total_batch = total_batch_before;

  if (workers_after <= workers_before) {
    // Scaling in / migration: strong scaling is free (parallelism is already
    // sufficient), unless the per-worker batch no longer fits in GPU memory.
    int tbs = total_batch_before;
    while (!throughput_->fits(model_, workers_after, tbs) && tbs > 1) tbs /= 2;
    require(tbs >= 1 && throughput_->fits(model_, workers_after, tbs),
            "decide: no feasible batch for scale-in target");
    d.total_batch = tbs;
    d.batch_factor = static_cast<double>(tbs) / total_batch_before;
    d.weak_scaled = tbs != total_batch_before;
    d.optimal_workers = throughput_->optimal_workers(model_, tbs);
    return d;
  }

  // Scaling out — Algorithm 1.
  const double ratio = static_cast<double>(workers_after) / workers_before;
  double k = 1.0;
  while (k <= ratio && k <= params_.max_factor) {
    const int tbs = static_cast<int>(k * total_batch_before);
    if (throughput_->fits(model_, workers_after, tbs)) {
      const int n_opt = throughput_->optimal_workers(model_, tbs);
      if (n_opt >= workers_after) {
        d.total_batch = tbs;
        d.batch_factor = k;
        d.weak_scaled = k != 1.0;
        d.optimal_workers = n_opt;
        return d;
      }
    }
    k *= 2.0;
  }

  // All trials failed: apply weak scaling proportional to the resource
  // change (Algorithm 1 line 15).
  k = std::min(ratio, params_.max_factor);
  int tbs = static_cast<int>(k * total_batch_before);
  while (!throughput_->fits(model_, workers_after, tbs) && tbs > total_batch_before) tbs /= 2;
  d.total_batch = tbs;
  d.batch_factor = static_cast<double>(tbs) / total_batch_before;
  d.weak_scaled = tbs != total_batch_before;
  d.optimal_workers = 0;
  return d;
}

}  // namespace elan
