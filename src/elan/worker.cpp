#include "elan/worker.h"

#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "common/serialize.h"
#include "obs/flight.h"

namespace elan {

const char* to_string(WorkerState state) {
  switch (state) {
    case WorkerState::kLaunching: return "launching";
    case WorkerState::kInitializing: return "initializing";
    case WorkerState::kReady: return "ready";
    case WorkerState::kTraining: return "training";
    case WorkerState::kStopped: return "stopped";
  }
  return "?";
}

WorkerProcess::WorkerProcess(sim::Simulator& simulator, transport::RawTransport& bus,
                             const std::string& job_id, int id, topo::GpuId gpu,
                             const train::ModelSpec& model, train::EngineKind engine_kind,
                             WorkerParams params, Rng rng, bool already_running,
                             EngineFactory engine_factory)
    : sim_(simulator),
      job_id_(job_id),
      name_("w" + std::to_string(id) + "/" + job_id),
      am_name_("am/" + job_id),
      id_(id),
      gpu_(gpu),
      state_(already_running ? WorkerState::kTraining : WorkerState::kLaunching),
      params_(params),
      rng_(rng),
      engine_(engine_factory ? engine_factory() : train::make_engine(model, engine_kind)) {
  ELAN_CHECK(engine_ != nullptr, "worker: engine factory returned null");
  register_builtin_hooks();
  endpoint_ = std::make_unique<transport::ReliableEndpoint>(
      bus, name_, [this](const transport::Message& msg) { handle(msg); });
}

WorkerProcess::~WorkerProcess() {
  if (decision_timer_ != 0) sim_.cancel(decision_timer_);
}

void WorkerProcess::register_builtin_hooks() {
  // The engine exposes its framework-specific state (Table II: model and
  // optimizer, GPU-resident).
  engine_->register_state_hooks(hooks_);
  // Runtime info (iteration counter etc.) lives in CPU memory.
  hooks_.register_hook(StateHook{
      "runtime", StateLocation::kCpu, params_.runtime_state_bytes,
      [this] {
        BinaryWriter w;
        w.write(engine_->iteration());
        return Blob("runtime", w.take());
      },
      [this](const Blob& b) {
        BinaryReader r(b.bytes());
        engine_->set_iteration(r.read<std::uint64_t>());
      }});
  // The data-loader hook is registered by the job, which owns the sampler.
}

void WorkerProcess::launch(std::function<void()> on_ready) {
  require(state_ == WorkerState::kLaunching, "launch: worker not in Launching state");
  measured_start_ =
      rng_.truncated_normal(params_.start_mean, params_.start_stddev,
                            params_.start_mean * 0.5, params_.start_mean * 2.0);
  sim_.schedule(measured_start_, [this, on_ready = std::move(on_ready)]() mutable {
    state_ = WorkerState::kInitializing;
    measured_init_ = engine_->initialization_time();
    sim_.schedule(measured_init_, [this, on_ready = std::move(on_ready)]() {
      state_ = WorkerState::kReady;
      if (suppress_report_) {
        log_debug() << name_ << ": ready, but report suppressed (fault injection)";
      } else {
        ReportMsg report;
        report.worker = id_;
        report.gpu = gpu_;
        endpoint_->send(am_name_, "report", report.serialize());
        log_debug() << name_ << ": ready, reported to AM";
      }
      if (on_ready) on_ready();
    });
  });
}

void WorkerProcess::coordinate(std::uint64_t iteration,
                               std::function<void(const DecisionMsg&)> on_decision) {
  require(state_ == WorkerState::kTraining || state_ == WorkerState::kReady,
          "coordinate: worker " + name_ + " not running");
  require(!pending_decision_, "coordinate: decision already pending on " + name_);
  pending_decision_ = std::move(on_decision);
  pending_iteration_ = iteration;
  send_coordinate();
  arm_decision_timer();
}

void WorkerProcess::send_coordinate() {
  obs::FlightRecorder::record(obs::FlightEventKind::kCoordinateSend,
                              name_.c_str(), nullptr, pending_iteration_,
                              static_cast<std::uint64_t>(id_));
  CoordinateMsg msg;
  msg.worker = id_;
  msg.iteration = pending_iteration_;
  endpoint_->send(am_name_, "coordinate", msg.serialize());
}

void WorkerProcess::arm_decision_timer() {
  decision_timer_ = sim_.schedule(params_.decision_timeout, [this] {
    decision_timer_ = 0;
    if (!pending_decision_ || state_ == WorkerState::kStopped) return;
    // The transport acked the coordinate but the decision never came — the
    // AM crashed between ack and reply. Re-send under a fresh message id so
    // the (recovered, dedup-reset) AM answers again.
    ++decision_resends_;
    obs::FlightRecorder::record(obs::FlightEventKind::kCoordinateResend,
                                name_.c_str(), nullptr, pending_iteration_,
                                decision_resends_);
    log_debug() << name_ << ": no decision for iteration " << pending_iteration_ << " after "
                << params_.decision_timeout << "s; re-sending coordinate";
    send_coordinate();
    arm_decision_timer();
  });
}

void WorkerProcess::handle(const transport::Message& msg) {
  if (msg.type == "decision") {
    if (!pending_decision_) {
      obs::FlightRecorder::record(obs::FlightEventKind::kDecisionStale,
                                  name_.c_str(), nullptr, pending_iteration_, 0);
      log_trace() << name_ << ": decision with no pending coordination (duplicate)";
      return;
    }
    auto decision = DecisionMsg::deserialize(msg.payload);
    if (decision.iteration != pending_iteration_) {
      obs::FlightRecorder::record(obs::FlightEventKind::kDecisionStale,
                                  name_.c_str(), nullptr, decision.iteration, 1,
                                  pending_iteration_);
      // A stale replay: a lost-ack coordinate from an earlier round was
      // re-delivered to a recovered AM, which answered it. Consuming it here
      // would hand this round a decision made for a different one (and the
      // real decision would then be dropped as a duplicate).
      log_trace() << name_ << ": stale decision for iteration " << decision.iteration
                  << " (awaiting " << pending_iteration_ << "); discarded";
      return;
    }
    if (decision_timer_ != 0) {
      sim_.cancel(decision_timer_);
      decision_timer_ = 0;
    }
    obs::FlightRecorder::record(obs::FlightEventKind::kDecisionRecv,
                                name_.c_str(), nullptr, decision.iteration,
                                decision.adjust ? 1 : 0);
    auto cb = std::exchange(pending_decision_, nullptr);
    cb(decision);
  } else {
    log_warn() << name_ << ": unknown message type " << msg.type;
  }
}

void WorkerProcess::set_training() {
  require(state_ == WorkerState::kReady, "set_training: worker not Ready");
  state_ = WorkerState::kTraining;
}

void WorkerProcess::shutdown() {
  state_ = WorkerState::kStopped;
  pending_decision_ = nullptr;
  if (decision_timer_ != 0) {
    sim_.cancel(decision_timer_);
    decision_timer_ = 0;
  }
  endpoint_->shutdown();
}

}  // namespace elan
