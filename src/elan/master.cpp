#include "elan/master.h"

#include <algorithm>

#include "common/error.h"
#include "common/log.h"
#include "obs/flight.h"
#include "obs/trace.h"

namespace elan {

const char* to_string(AmPhase phase) {
  switch (phase) {
    case AmPhase::kSteady: return "steady";
    case AmPhase::kWaitingReady: return "waiting-ready";
    case AmPhase::kReady: return "ready";
    case AmPhase::kAdjusting: return "adjusting";
  }
  return "?";
}

ApplicationMaster::ApplicationMaster(transport::RawTransport& bus, transport::KvStore& kv,
                                     std::string job_id,
                                     std::vector<WorkerLaunchSpec> initial_workers,
                                     AmParams params)
    : ApplicationMaster(bus, kv, std::move(job_id), params) {
  MutexLock lock(mu_);
  for (const auto& w : initial_workers) {
    require(w.worker >= 0, "AM: bad initial worker id");
    workers_.emplace(w.worker, w.gpu);
    next_worker_id_ = std::max(next_worker_id_, w.worker + 1);
  }
  persist();
}

ApplicationMaster::ApplicationMaster(transport::RawTransport& bus, transport::KvStore& kv,
                                     std::string job_id, AmParams params)
    : bus_(bus), kv_(kv), job_id_(std::move(job_id)), name_("am/" + job_id_),
      params_(params) {
  require(params_.report_timeout > 0, "AM: report_timeout must be positive");
  attach_endpoint();
}

ApplicationMaster::~ApplicationMaster() {
  alive_token_->store(false);
  MutexLock lock(mu_);
  cancel_report_timer_locked();
}

void ApplicationMaster::set_phase_locked(AmPhase next) {
  if (obs::Tracer::enabled()) {
    // One span per phase the AM has just left, named "phase/<name>", so the
    // timeline shows how long the AM spent waiting for reports vs adjusting.
    auto& tracer = obs::Tracer::instance();
    const double now_us = tracer.now_us();
    tracer.complete("master", std::string("phase/") + to_string(phase_), phase_started_us_,
                    now_us - phase_started_us_,
                    "{\"job\":\"" + obs::json_escape(job_id_) + "\"}");
    phase_started_us_ = now_us;
  }
  const AmPhase prev = phase_;
  phase_ = next;
  obs::FlightRecorder::record(obs::FlightEventKind::kAmPhase, name_.c_str(),
                              to_string(next),
                              static_cast<std::uint64_t>(prev),
                              static_cast<std::uint64_t>(next),
                              plan_.version);
  // Listener runs under mu_ (see header): it may schedule simulator events
  // but must not call back into this AM.
  if (phase_listener_ && prev != next) phase_listener_(prev, next);
}

void ApplicationMaster::arm_report_timer_locked() {
  cancel_report_timer_locked();
  auto token = alive_token_;
  report_timer_ = bus_.schedule_after(params_.report_timeout, [this, token] {
    if (!token->load()) return;
    on_report_timeout();
  });
}

void ApplicationMaster::cancel_report_timer_locked() {
  if (report_timer_ != 0) {
    bus_.cancel_timer(report_timer_);
    report_timer_ = 0;
  }
}

void ApplicationMaster::on_report_timeout() {
  MutexLock lock(mu_);
  report_timer_ = 0;
  if (phase_ != AmPhase::kWaitingReady) return;  // stale timer
  // Joining workers that never reported are presumed dead (crashed during
  // launch, or partitioned): evict them so the adjustment degrades
  // gracefully to the workers that did report instead of wedging forever.
  for (int id : pending_reports_) {
    plan_.join.erase(id);
    ++evictions_;
    obs::FlightRecorder::record(obs::FlightEventKind::kWorkerEvicted,
                                name_.c_str(), nullptr,
                                static_cast<std::uint64_t>(id), plan_.version);
    log_warn() << name_ << ": evicting joining worker " << id
               << " (no report within " << params_.report_timeout << "s)";
    if (obs::Tracer::enabled()) {
      obs::Tracer::instance().instant(
          "master", "evict_joining", "{\"worker\":" + std::to_string(id) + "}");
    }
  }
  pending_reports_.clear();
  if (plan_.join.empty() && plan_.type != AdjustmentType::kScaleIn) {
    // Nobody made it: abort the adjustment cleanly (a migration without
    // replacements must not remove its victims).
    log_warn() << name_ << ": plan v" << plan_.version
               << " aborted, no joining worker reported";
    plan_ = AdjustmentPlan{};
    set_phase_locked(AmPhase::kSteady);
  } else {
    set_phase_locked(AmPhase::kReady);
  }
  persist();
}

void ApplicationMaster::attach_endpoint() {
  endpoint_ = std::make_unique<transport::ReliableEndpoint>(
      bus_, name_, [this](const transport::Message& msg) { handle(msg); });
}

void ApplicationMaster::handle(const transport::Message& msg) {
  if (msg.type == "report") {
    on_report(ReportMsg::deserialize(msg.payload));
  } else if (msg.type == "coordinate") {
    on_coordinate(CoordinateMsg::deserialize(msg.payload), msg.from);
  } else if (msg.type == "adjust_request") {
    on_adjust_request(AdjustRequestMsg::deserialize(msg.payload), msg.from);
  } else if (msg.type == "adjust_complete") {
    on_adjust_complete_msg(AdjustCompleteMsg::deserialize(msg.payload));
  } else if (msg.type == "remove_failed") {
    remove_failed(RemoveFailedMsg::deserialize(msg.payload).worker);
  } else if (msg.type == "status") {
    on_status(StatusRequestMsg::deserialize(msg.payload), msg.from);
  } else {
    log_warn() << name_ << ": unknown message type " << msg.type;
  }
}

void ApplicationMaster::on_adjust_request(const AdjustRequestMsg& msg,
                                          const std::string& reply_to) {
  AdjustReplyMsg reply;
  reply.request_id = msg.request_id;
  {
    MutexLock lock(mu_);
    obs::FlightRecorder::record(obs::FlightEventKind::kAdjustRequest,
                                name_.c_str(), to_string(msg.type),
                                msg.request_id);
    auto cached = replied_.find(msg.request_id);
    if (cached != replied_.end()) {
      // The job re-sent this request because the original reply never
      // arrived — replay the cached verdict instead of re-executing.
      log_debug() << "am/" << job_id_ << ": replaying reply for duplicate adjust request "
                  << msg.request_id;
      obs::FlightRecorder::record(obs::FlightEventKind::kAdjustReplay,
                                  name_.c_str(), nullptr, msg.request_id,
                                  cached->second.ok ? 1 : 0);
      reply = cached->second;
    } else {
      try {
        std::vector<WorkerLaunchSpec> specs;
        switch (msg.type) {
          case AdjustmentType::kScaleOut:
            specs = scale_out_locked(msg.gpus);
            break;
          case AdjustmentType::kScaleIn:
            scale_in_locked(msg.victims);
            break;
          case AdjustmentType::kMigrate:
            specs = migrate_locked(msg.victims, msg.gpus);
            break;
        }
        reply.ok = true;
        for (const auto& s : specs) reply.launch.emplace_back(s.worker, s.gpu);
      } catch (const Error& e) {
        reply.ok = false;
        reply.error = e.what();
      }
      obs::FlightRecorder::record(obs::FlightEventKind::kAdjustVerdict,
                                  name_.c_str(), to_string(msg.type),
                                  msg.request_id, reply.ok ? 1 : 0,
                                  plan_.version);
      replied_.emplace(msg.request_id, reply);
      while (replied_.size() > 16) replied_.erase(replied_.begin());
      persist();
    }
  }
  // Reply with no AM lock held (endpoint -> bus -> simulator locks follow).
  endpoint_->send(reply_to, "adjust_reply", reply.serialize());
}

std::vector<WorkerLaunchSpec> ApplicationMaster::scale_out(
    const std::vector<topo::GpuId>& gpus) {
  MutexLock lock(mu_);
  return scale_out_locked(gpus);
}

std::vector<WorkerLaunchSpec> ApplicationMaster::scale_out_locked(
    const std::vector<topo::GpuId>& gpus) {
  require(phase_ == AmPhase::kSteady, "AM: adjustment already pending");
  require(!gpus.empty(), "scale_out: no GPUs");
  plan_ = AdjustmentPlan{};
  plan_.version = next_version_++;
  plan_.type = AdjustmentType::kScaleOut;
  std::vector<WorkerLaunchSpec> specs;
  for (auto gpu : gpus) {
    const int id = next_worker_id_++;
    plan_.join.emplace(id, gpu);
    pending_reports_.insert(id);
    specs.push_back({id, gpu});
  }
  set_phase_locked(AmPhase::kWaitingReady);
  arm_report_timer_locked();
  persist();
  return specs;
}

void ApplicationMaster::scale_in(const std::vector<int>& victims) {
  MutexLock lock(mu_);
  scale_in_locked(victims);
}

void ApplicationMaster::scale_in_locked(const std::vector<int>& victims) {
  require(phase_ == AmPhase::kSteady, "AM: adjustment already pending");
  require(!victims.empty(), "scale_in: no victims");
  require(victims.size() < workers_.size(), "scale_in: cannot remove all workers");
  for (int v : victims) {
    require(workers_.count(v) > 0, "scale_in: unknown worker " + std::to_string(v));
  }
  plan_ = AdjustmentPlan{};
  plan_.version = next_version_++;
  plan_.type = AdjustmentType::kScaleIn;
  plan_.leave = victims;
  // No new workers to wait for: ready immediately.
  set_phase_locked(AmPhase::kReady);
  persist();
}

std::vector<WorkerLaunchSpec> ApplicationMaster::migrate(
    const std::vector<int>& victims, const std::vector<topo::GpuId>& target_gpus) {
  MutexLock lock(mu_);
  return migrate_locked(victims, target_gpus);
}

std::vector<WorkerLaunchSpec> ApplicationMaster::migrate_locked(
    const std::vector<int>& victims, const std::vector<topo::GpuId>& target_gpus) {
  require(phase_ == AmPhase::kSteady, "AM: adjustment already pending");
  require(!victims.empty() && victims.size() == target_gpus.size(),
          "migrate: victims/targets mismatch");
  for (int v : victims) {
    require(workers_.count(v) > 0, "migrate: unknown worker " + std::to_string(v));
  }
  plan_ = AdjustmentPlan{};
  plan_.version = next_version_++;
  plan_.type = AdjustmentType::kMigrate;
  plan_.leave = victims;
  std::vector<WorkerLaunchSpec> specs;
  for (auto gpu : target_gpus) {
    const int id = next_worker_id_++;
    plan_.join.emplace(id, gpu);
    pending_reports_.insert(id);
    specs.push_back({id, gpu});
  }
  set_phase_locked(AmPhase::kWaitingReady);
  arm_report_timer_locked();
  persist();
  return specs;
}

void ApplicationMaster::on_report(const ReportMsg& msg) {
  MutexLock lock(mu_);
  ++reports_received_;
  if (phase_ != AmPhase::kWaitingReady) {
    // Duplicate or stale report (e.g. resent after an AM restart): ignore.
    return;
  }
  if (obs::Tracer::enabled()) {
    obs::Tracer::instance().instant(
        "master", "worker_report", "{\"worker\":" + std::to_string(msg.worker) + "}");
  }
  obs::FlightRecorder::record(obs::FlightEventKind::kWorkerReport,
                              name_.c_str(), nullptr,
                              static_cast<std::uint64_t>(msg.worker),
                              plan_.version);
  pending_reports_.erase(msg.worker);
  if (pending_reports_.empty()) {
    cancel_report_timer_locked();
    set_phase_locked(AmPhase::kReady);
    log_debug() << name_ << ": all new workers reported, plan v" << plan_.version
                << " ready";
  }
  persist();
}

void ApplicationMaster::on_coordinate(const CoordinateMsg& msg, const std::string& reply_to) {
  DecisionMsg decision;
  decision.iteration = msg.iteration;
  {
    MutexLock lock(mu_);
    ++coordinations_;
    // Instruct the adjustment only when every joining worker is ready;
    // workers that coordinate earlier simply proceed with training
    // (asynchronous coordination, §V-B).
    if (phase_ == AmPhase::kReady || phase_ == AmPhase::kAdjusting) {
      decision.adjust = true;
      decision.plan = plan_;
      if (phase_ == AmPhase::kReady) {
        if (obs::Tracer::enabled()) {
          obs::Tracer::instance().instant(
              "master", "instruct_adjustment",
              "{\"plan_version\":" + std::to_string(plan_.version) + "}");
        }
        set_phase_locked(AmPhase::kAdjusting);
        persist();
      }
    }
  }
  endpoint_->send(reply_to, "decision", decision.serialize());
}

void ApplicationMaster::on_adjustment_complete(const std::vector<int>& failed_joins) {
  MutexLock lock(mu_);
  require(phase_ == AmPhase::kAdjusting, "AM: no adjustment in flight");
  complete_locked(failed_joins);
}

void ApplicationMaster::complete_locked(const std::vector<int>& failed_joins) {
  for (const auto& [id, gpu] : plan_.join) {
    if (std::find(failed_joins.begin(), failed_joins.end(), id) != failed_joins.end()) {
      continue;  // died between reporting and admission
    }
    workers_.emplace(id, gpu);
  }
  for (int v : plan_.leave) workers_.erase(v);
  plan_ = AdjustmentPlan{};
  plan_.version = 0;
  set_phase_locked(AmPhase::kSteady);
  persist();
}

void ApplicationMaster::on_adjust_complete_msg(const AdjustCompleteMsg& msg) {
  MutexLock lock(mu_);
  if (phase_ != AmPhase::kAdjusting || msg.plan_version != plan_.version) {
    // Duplicate (the runtime re-sent after a lost ack) or a completion for a
    // plan that already finished: idempotent no-op, unlike the in-process
    // on_adjustment_complete which treats this as a programming error.
    log_debug() << name_ << ": ignoring adjust_complete for plan v" << msg.plan_version
                << " (phase " << to_string(phase_) << ", plan v" << plan_.version << ")";
    return;
  }
  complete_locked(msg.failed_joins);
}

void ApplicationMaster::on_status(const StatusRequestMsg& msg, const std::string& reply_to) {
  StatusReplyMsg reply;
  reply.request_id = msg.request_id;
  {
    MutexLock lock(mu_);
    reply.phase = static_cast<std::uint8_t>(phase_);
    reply.plan_version = plan_.version;
    reply.workers = workers_;
    reply.evictions = evictions_;
    reply.coordinations = coordinations_;
    reply.reports = reports_received_;
  }
  // Reply with no AM lock held, like every other message path.
  endpoint_->send(reply_to, "status_reply", reply.serialize());
}

void ApplicationMaster::remove_failed(int worker) {
  MutexLock lock(mu_);
  workers_.erase(worker);
  persist();
}

void ApplicationMaster::persist() {
  BinaryWriter w;
  w.write(static_cast<std::uint8_t>(phase_));
  w.write(next_worker_id_);
  w.write(next_version_);
  w.write<std::uint64_t>(workers_.size());
  for (const auto& [id, gpu] : workers_) {
    w.write(id);
    w.write(gpu);
  }
  const auto plan_bytes = plan_.serialize();
  w.write_bytes(plan_bytes);
  w.write<std::uint64_t>(pending_reports_.size());
  for (int id : pending_reports_) w.write(id);
  w.write<std::uint64_t>(replied_.size());
  for (const auto& [id, reply] : replied_) {
    w.write(id);
    w.write_bytes(reply.serialize());
  }
  kv_.put(kv_key(), w.take());
}

void ApplicationMaster::restore_from_bytes(std::span<const std::uint8_t> data) {
  MutexLock lock(mu_);
  BinaryReader r(data);
  phase_ = static_cast<AmPhase>(r.read<std::uint8_t>());
  next_worker_id_ = r.read<int>();
  next_version_ = r.read<std::uint64_t>();
  const auto nw = r.read<std::uint64_t>();
  workers_.clear();
  for (std::uint64_t i = 0; i < nw; ++i) {
    const int id = r.read<int>();
    const auto gpu = r.read<topo::GpuId>();
    workers_.emplace(id, gpu);
  }
  const auto plan_bytes = r.read_bytes();
  BinaryReader pr(plan_bytes);
  plan_ = AdjustmentPlan::deserialize(pr);
  pending_reports_.clear();
  const auto np = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < np; ++i) pending_reports_.insert(r.read<int>());
  replied_.clear();
  const auto nr = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < nr; ++i) {
    const auto id = r.read<std::uint64_t>();
    replied_.emplace(id, AdjustReplyMsg::deserialize(r.read_bytes()));
  }
  // A recovery landing mid-wait restarts the report-timeout clock: the
  // workers get a fresh window before eviction.
  if (phase_ == AmPhase::kWaitingReady) arm_report_timer_locked();
}

std::unique_ptr<ApplicationMaster> ApplicationMaster::recover(transport::RawTransport& bus,
                                                              transport::KvStore& kv,
                                                              const std::string& job_id,
                                                              AmParams params) {
  auto data = kv.get_now("elan/am/" + job_id);
  if (!data) throw NotFound("persisted AM state for job " + job_id);
  // Note: cannot use make_unique with a private constructor.
  std::unique_ptr<ApplicationMaster> am(new ApplicationMaster(bus, kv, job_id, params));
  am->restore_from_bytes(*data);
  return am;
}

void ApplicationMaster::crash() {
  endpoint_->shutdown();
  // Timers are process-local state: they die with the process. Recovery
  // re-arms the report timeout from the persisted phase.
  MutexLock lock(mu_);
  cancel_report_timer_locked();
}

}  // namespace elan
