// Control-plane message payloads (AM <-> workers).
//
// Serialised with the library's binary writer; both ends live in one process,
// but payloads still round-trip through bytes so the protocol stays honest
// (and message sizes drive control-network latency).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "topology/topology.h"

namespace elan {

/// Types of resource adjustments (Table III service API).
enum class AdjustmentType { kScaleOut, kScaleIn, kMigrate };

const char* to_string(AdjustmentType type);

/// A pending resource adjustment tracked by the AM.
struct AdjustmentPlan {
  std::uint64_t version = 0;
  AdjustmentType type = AdjustmentType::kScaleOut;
  /// New workers to join: worker id -> GPU.
  std::map<int, topo::GpuId> join;
  /// Existing workers to remove.
  std::vector<int> leave;

  std::vector<std::uint8_t> serialize() const;
  static AdjustmentPlan deserialize(BinaryReader& reader);

  bool operator==(const AdjustmentPlan&) const = default;
};

/// Worker -> AM: "I started, initialised, and can join the training."
struct ReportMsg {
  int worker = -1;
  topo::GpuId gpu = -1;

  std::vector<std::uint8_t> serialize() const;
  static ReportMsg deserialize(std::span<const std::uint8_t> data);
};

/// Worker -> AM at coordination intervals.
struct CoordinateMsg {
  int worker = -1;
  std::uint64_t iteration = 0;

  std::vector<std::uint8_t> serialize() const;
  static CoordinateMsg deserialize(std::span<const std::uint8_t> data);
};

/// AM -> worker: coordination decision. When `adjust` is set the payload
/// carries the full plan so workers act on a consistent view.
struct DecisionMsg {
  bool adjust = false;
  std::uint64_t iteration = 0;  // echo of the coordination iteration
  AdjustmentPlan plan;          // meaningful only when adjust == true

  std::vector<std::uint8_t> serialize() const;
  static DecisionMsg deserialize(std::span<const std::uint8_t> data);
};

/// Scheduler -> AM: resource-adjustment request (the Table III service call,
/// step 1 of Fig 2), carried over the control network like everything else.
struct AdjustRequestMsg {
  std::uint64_t request_id = 0;  // correlates the reply
  AdjustmentType type = AdjustmentType::kScaleOut;
  std::vector<topo::GpuId> gpus;  // scale-out targets / migration targets
  std::vector<int> victims;       // scale-in / migration victims

  std::vector<std::uint8_t> serialize() const;
  static AdjustRequestMsg deserialize(std::span<const std::uint8_t> data);
};

/// AM -> scheduler: service reply. On success carries the launch specs the
/// scheduler must start (empty for scale-in).
struct AdjustReplyMsg {
  std::uint64_t request_id = 0;
  bool ok = false;
  std::string error;
  std::vector<std::pair<int, topo::GpuId>> launch;  // worker id -> GPU

  std::vector<std::uint8_t> serialize() const;
  static AdjustReplyMsg deserialize(std::span<const std::uint8_t> data);
};

/// Job runtime / launcher -> AM: the adjustment for `plan_version` finished
/// (replication / repartition done). The wire form of
/// ApplicationMaster::on_adjustment_complete, used when the runtime is a
/// separate process. Idempotent at the AM: stale versions are ignored.
struct AdjustCompleteMsg {
  std::uint64_t plan_version = 0;
  /// Planned joiners that died between reporting and admission.
  std::vector<int> failed_joins;

  std::vector<std::uint8_t> serialize() const;
  static AdjustCompleteMsg deserialize(std::span<const std::uint8_t> data);
};

/// Launcher / runtime -> AM: a running worker fail-stopped (process reaped).
/// Wire form of ApplicationMaster::remove_failed.
struct RemoveFailedMsg {
  int worker = -1;

  std::vector<std::uint8_t> serialize() const;
  static RemoveFailedMsg deserialize(std::span<const std::uint8_t> data);
};

/// Any control-plane peer -> AM: introspection poll (the live launcher's
/// steady-state / phase probe).
struct StatusRequestMsg {
  std::uint64_t request_id = 0;  // correlates the reply

  std::vector<std::uint8_t> serialize() const;
  static StatusRequestMsg deserialize(std::span<const std::uint8_t> data);
};

/// AM -> poller: state-machine snapshot.
struct StatusReplyMsg {
  std::uint64_t request_id = 0;
  std::uint8_t phase = 0;  // static_cast of AmPhase (messages stay AM-agnostic)
  std::uint64_t plan_version = 0;
  std::map<int, topo::GpuId> workers;  // current membership (worker -> GPU)
  std::uint64_t evictions = 0;
  std::uint64_t coordinations = 0;
  std::uint64_t reports = 0;

  std::vector<std::uint8_t> serialize() const;
  static StatusReplyMsg deserialize(std::span<const std::uint8_t> data);
};

}  // namespace elan
