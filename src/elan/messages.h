// Control-plane message payloads (AM <-> workers).
//
// Serialised with the library's binary writer; both ends live in one process,
// but payloads still round-trip through bytes so the protocol stays honest
// (and message sizes drive control-network latency).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "topology/topology.h"

namespace elan {

/// Types of resource adjustments (Table III service API).
enum class AdjustmentType { kScaleOut, kScaleIn, kMigrate };

const char* to_string(AdjustmentType type);

/// A pending resource adjustment tracked by the AM.
struct AdjustmentPlan {
  std::uint64_t version = 0;
  AdjustmentType type = AdjustmentType::kScaleOut;
  /// New workers to join: worker id -> GPU.
  std::map<int, topo::GpuId> join;
  /// Existing workers to remove.
  std::vector<int> leave;

  std::vector<std::uint8_t> serialize() const;
  static AdjustmentPlan deserialize(BinaryReader& reader);

  bool operator==(const AdjustmentPlan&) const = default;
};

/// Worker -> AM: "I started, initialised, and can join the training."
struct ReportMsg {
  int worker = -1;
  topo::GpuId gpu = -1;

  std::vector<std::uint8_t> serialize() const;
  static ReportMsg deserialize(std::span<const std::uint8_t> data);
};

/// Worker -> AM at coordination intervals.
struct CoordinateMsg {
  int worker = -1;
  std::uint64_t iteration = 0;

  std::vector<std::uint8_t> serialize() const;
  static CoordinateMsg deserialize(std::span<const std::uint8_t> data);
};

/// AM -> worker: coordination decision. When `adjust` is set the payload
/// carries the full plan so workers act on a consistent view.
struct DecisionMsg {
  bool adjust = false;
  std::uint64_t iteration = 0;  // echo of the coordination iteration
  AdjustmentPlan plan;          // meaningful only when adjust == true

  std::vector<std::uint8_t> serialize() const;
  static DecisionMsg deserialize(std::span<const std::uint8_t> data);
};

/// Scheduler -> AM: resource-adjustment request (the Table III service call,
/// step 1 of Fig 2), carried over the control network like everything else.
struct AdjustRequestMsg {
  std::uint64_t request_id = 0;  // correlates the reply
  AdjustmentType type = AdjustmentType::kScaleOut;
  std::vector<topo::GpuId> gpus;  // scale-out targets / migration targets
  std::vector<int> victims;       // scale-in / migration victims

  std::vector<std::uint8_t> serialize() const;
  static AdjustRequestMsg deserialize(std::span<const std::uint8_t> data);
};

/// AM -> scheduler: service reply. On success carries the launch specs the
/// scheduler must start (empty for scale-in).
struct AdjustReplyMsg {
  std::uint64_t request_id = 0;
  bool ok = false;
  std::string error;
  std::vector<std::pair<int, topo::GpuId>> launch;  // worker id -> GPU

  std::vector<std::uint8_t> serialize() const;
  static AdjustReplyMsg deserialize(std::span<const std::uint8_t> data);
};

}  // namespace elan
