// Application master (paper §II, §V).
//
// One AM is attached to each job. It offers the resource-adjustment service
// to the scheduler (Table III: ScaleOut / ScaleIn / Migrate), collects
// readiness reports from asynchronously starting new workers, and answers the
// periodic Coordinate calls from existing workers — instructing an adjustment
// only once every joining worker has reported, so start/initialisation stays
// off the training critical path (§V-B).
//
// Fault tolerance (§V-D): the AM is a state machine persisted to the KV store
// after every transition; `recover` rebuilds an equivalent AM after a crash.
// Message loss is handled by the ReliableEndpoint layer underneath.
//
// Thread safety: the report/poll state machine is guarded by one mutex, so
// the scheduler's service calls, worker reports and coordination polls may
// arrive on any thread (the prerequisite for running §V-B coordination off
// the training thread). Replies are sent with no AM lock held. Lock order:
// application_master -> {reliable_endpoint, kv_store} -> ... -> simulator.
// Accessors return snapshots by value — the state machine keeps moving.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/sync.h"
#include "elan/messages.h"
#include "transport/bus.h"
#include "transport/kv_store.h"

namespace elan {

enum class AmPhase {
  kSteady = 0,       // no pending adjustment
  kWaitingReady = 1, // adjustment requested; waiting for new workers' reports
  kReady = 2,        // all reports in; instruct at the next coordination
  kAdjusting = 3,    // adjustment instructed; waiting for completion
};

const char* to_string(AmPhase phase);

struct WorkerLaunchSpec {
  int worker = -1;
  topo::GpuId gpu = -1;
};

struct AmParams {
  /// How long the AM waits in kWaitingReady for joining workers' reports.
  /// Workers that never report (crashed or partitioned mid-launch) are
  /// evicted from the plan when the timeout fires: the scale-out degrades
  /// gracefully to the workers that did report, or aborts cleanly if none
  /// did. Must comfortably exceed worker start + init time.
  Seconds report_timeout = 120.0;
};

class ApplicationMaster {
 public:
  ApplicationMaster(transport::RawTransport& bus, transport::KvStore& kv, std::string job_id,
                    std::vector<WorkerLaunchSpec> initial_workers, AmParams params = {});
  ~ApplicationMaster();

  const std::string& name() const { return name_; }
  const std::string& job_id() const { return job_id_; }
  AmPhase phase() const {
    MutexLock lock(mu_);
    return phase_;
  }
  std::uint64_t plan_version() const {
    MutexLock lock(mu_);
    return plan_.version;
  }
  /// Snapshot of the pending plan.
  AdjustmentPlan plan() const {
    MutexLock lock(mu_);
    return plan_;
  }

  /// Snapshot of the worker membership as known to the AM (worker -> GPU).
  std::map<int, topo::GpuId> workers() const {
    MutexLock lock(mu_);
    return workers_;
  }

  // --- Service API offered to the scheduler (Table III) -------------------

  /// Requests adding workers on the given GPUs. Returns the launch specs the
  /// scheduler must start (step 1 in Fig 2). Fails if an adjustment is
  /// already pending.
  std::vector<WorkerLaunchSpec> scale_out(const std::vector<topo::GpuId>& gpus);

  /// Requests removing the given workers.
  void scale_in(const std::vector<int>& victims);

  /// Requests moving the given workers to new GPUs. Implemented as joining
  /// replacements and removing the originals. Returns the launch specs.
  std::vector<WorkerLaunchSpec> migrate(const std::vector<int>& victims,
                                        const std::vector<topo::GpuId>& target_gpus);

  /// True when a request can be accepted.
  bool idle() const {
    MutexLock lock(mu_);
    return phase_ == AmPhase::kSteady;
  }

  // --- Completion signal from the job runtime ------------------------------

  /// Called by the job once replication/repartition/reconstruction finished.
  /// `failed_joins` lists planned joiners that died before admission (killed
  /// mid-replication); they are excluded from the new membership.
  void on_adjustment_complete(const std::vector<int>& failed_joins = {});

  /// Removes a fail-stopped worker from the membership (worker fault
  /// tolerance: the job detected a dead replica at an iteration boundary).
  /// Permitted in any phase; a pending plan that references the worker as a
  /// victim keeps working (removing it twice is a no-op).
  void remove_failed(int worker);

  // --- Fault tolerance ------------------------------------------------------

  /// Rebuilds an AM from the state machine persisted in the KV store. A
  /// recovery landing in kWaitingReady re-arms the report timeout.
  static std::unique_ptr<ApplicationMaster> recover(transport::RawTransport& bus,
                                                    transport::KvStore& kv,
                                                    const std::string& job_id,
                                                    AmParams params = {});

  /// Detaches from the bus (crash simulation). Pending report timers die
  /// with the process; recovery re-arms them from the persisted state.
  void crash();

  /// Observer of phase transitions (fault injection hooks on "crash the AM
  /// between phases X and Y"). Invoked with the AM lock held: the listener
  /// must not call back into this AM — scheduling simulator events is the
  /// intended use (lock order application_master -> ... -> simulator).
  using PhaseListener = std::function<void(AmPhase from, AmPhase to)>;
  void set_phase_listener(PhaseListener listener) {
    MutexLock lock(mu_);
    phase_listener_ = std::move(listener);
  }

  std::uint64_t reports_received() const {
    MutexLock lock(mu_);
    return reports_received_;
  }
  std::uint64_t coordinations() const {
    MutexLock lock(mu_);
    return coordinations_;
  }
  /// Joining workers evicted by the report timeout.
  std::uint64_t evictions() const {
    MutexLock lock(mu_);
    return evictions_;
  }

 private:
  ApplicationMaster(transport::RawTransport& bus, transport::KvStore& kv, std::string job_id,
                    AmParams params);

  transport::RawTransport& bus_;
  transport::KvStore& kv_;
  std::string job_id_;
  std::string name_;
  AmParams params_;
  std::unique_ptr<transport::ReliableEndpoint> endpoint_;

  mutable Mutex mu_{"application_master"};
  AmPhase phase_ ELAN_GUARDED_BY(mu_) = AmPhase::kSteady;
  // Tracer-clock timestamp of the last phase transition; each transition
  // emits a span covering the phase that just ended (category "master").
  double phase_started_us_ ELAN_GUARDED_BY(mu_) = 0;
  std::map<int, topo::GpuId> workers_ ELAN_GUARDED_BY(mu_);
  AdjustmentPlan plan_ ELAN_GUARDED_BY(mu_);
  // Joining workers that have not reported yet.
  std::set<int> pending_reports_ ELAN_GUARDED_BY(mu_);
  /// Replay cache making on_adjust_request idempotent: if the job re-sends a
  /// request because the reply was lost (an AM crash between transport ack
  /// and reply delivery destroys the reply's retry state), the cached reply
  /// is re-sent instead of re-executing the adjustment. Persisted with the
  /// rest of the AM state; pruned to the most recent entries (request ids
  /// are monotonic).
  std::map<std::uint64_t, AdjustReplyMsg> replied_ ELAN_GUARDED_BY(mu_);
  int next_worker_id_ ELAN_GUARDED_BY(mu_) = 0;
  std::uint64_t next_version_ ELAN_GUARDED_BY(mu_) = 1;
  std::uint64_t reports_received_ ELAN_GUARDED_BY(mu_) = 0;
  std::uint64_t coordinations_ ELAN_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ ELAN_GUARDED_BY(mu_) = 0;
  PhaseListener phase_listener_ ELAN_GUARDED_BY(mu_);
  // Report-timeout timer for the current kWaitingReady stay, in the
  // transport's time domain (virtual over the sim bus, wall-clock over
  // sockets). The token outlives the AM so a timer firing after destruction
  // is a no-op.
  transport::TimerId report_timer_ ELAN_GUARDED_BY(mu_) = 0;
  std::shared_ptr<std::atomic<bool>> alive_token_ =
      std::make_shared<std::atomic<bool>>(true);

  void attach_endpoint();
  void arm_report_timer_locked() ELAN_REQUIRES(mu_);
  void cancel_report_timer_locked() ELAN_REQUIRES(mu_);
  void on_report_timeout();
  void handle(const transport::Message& msg);
  void on_report(const ReportMsg& msg);
  void on_coordinate(const CoordinateMsg& msg, const std::string& reply_to);
  void on_adjust_request(const AdjustRequestMsg& msg, const std::string& reply_to);
  // Message-path variant of on_adjustment_complete: an external job runtime
  // (the live launcher) signals completion over the wire. Tolerant of
  // duplicates and stale plan versions (re-sends after lost acks).
  void on_adjust_complete_msg(const AdjustCompleteMsg& msg);
  void on_status(const StatusRequestMsg& msg, const std::string& reply_to);
  void complete_locked(const std::vector<int>& failed_joins) ELAN_REQUIRES(mu_);
  // Unlocked cores of the service API; the public wrappers and the message
  // path (which already holds the lock) both funnel here.
  std::vector<WorkerLaunchSpec> scale_out_locked(const std::vector<topo::GpuId>& gpus)
      ELAN_REQUIRES(mu_);
  void scale_in_locked(const std::vector<int>& victims) ELAN_REQUIRES(mu_);
  std::vector<WorkerLaunchSpec> migrate_locked(const std::vector<int>& victims,
                                               const std::vector<topo::GpuId>& target_gpus)
      ELAN_REQUIRES(mu_);
  // Transition the phase state machine, tracing the phase that just ended.
  void set_phase_locked(AmPhase next) ELAN_REQUIRES(mu_);
  void persist() ELAN_REQUIRES(mu_);
  void restore_from_bytes(std::span<const std::uint8_t> data);
  std::string kv_key() const { return "elan/am/" + job_id_; }
};

}  // namespace elan
