// Worker process (control-plane actor + training engine + state hooks).
//
// A worker models one training process bound to one GPU. New workers go
// through Launching (process spawn, CUDA context) -> Initializing (framework
// init) -> Ready (reported to the AM); these delays are what the
// asynchronous coordination mechanism keeps off the critical path. The
// worker's training state is exposed exclusively through the hook registry
// (RegisterHook), which is how Elan stays framework-generic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "elan/hooks.h"
#include "elan/messages.h"
#include "sim/simulator.h"
#include "topology/topology.h"
#include "train/engine.h"
#include "transport/bus.h"

namespace elan {

enum class WorkerState { kLaunching, kInitializing, kReady, kTraining, kStopped };

const char* to_string(WorkerState state);

struct WorkerParams {
  /// Process spawn + CUDA context establishment (mean / stddev of a
  /// truncated normal; the variance is why the AM waits for reports instead
  /// of a fixed delay).
  Seconds start_mean = 12.0;
  Seconds start_stddev = 1.5;
  Seconds shutdown_time = 0.5;
  /// Nominal CPU-state sizes (Table II): loader state and runtime info.
  Bytes loader_state_bytes = 64_KiB;
  Bytes runtime_state_bytes = 1_KiB;
  /// How long a worker waits for a coordination decision before re-sending
  /// its Coordinate. The transport layer guarantees delivery of the
  /// *request*, not the *reply*: if the AM crashes after acking a coordinate
  /// but before its decision reaches the worker, the decision dies with the
  /// AM's endpoint and nobody retries it. The worker-level timer closes that
  /// gap — the recovered AM answers the re-sent coordinate (re-instructing
  /// the in-flight plan if it was mid-adjustment).
  Seconds decision_timeout = 1.0;
};

class WorkerProcess {
 public:
  using EngineFactory = std::function<std::unique_ptr<train::TrainingEngine>()>;

  /// Creates a worker. `already_running` workers (the job's initial set)
  /// skip the launch sequence and are immediately Ready. When
  /// `engine_factory` is set it supplies the training engine (a custom
  /// framework integration); otherwise `engine_kind` selects one of the
  /// built-in cost-modelled engines.
  WorkerProcess(sim::Simulator& simulator, transport::RawTransport& bus,
                const std::string& job_id, int id, topo::GpuId gpu,
                const train::ModelSpec& model, train::EngineKind engine_kind,
                WorkerParams params, Rng rng, bool already_running,
                EngineFactory engine_factory = nullptr);
  ~WorkerProcess();

  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;

  int id() const { return id_; }
  topo::GpuId gpu() const { return gpu_; }
  WorkerState state() const { return state_; }
  const std::string& endpoint_name() const { return name_; }

  train::TrainingEngine& engine() { return *engine_; }
  const train::TrainingEngine& engine() const { return *engine_; }
  HookRegistry& hooks() { return hooks_; }
  const HookRegistry& hooks() const { return hooks_; }

  /// Starts the launch sequence; reports to the AM when initialised.
  /// `on_ready` fires (if set) after the report is sent.
  void launch(std::function<void()> on_ready = nullptr);

  /// Sends a Coordinate message to the AM; `on_decision` fires with the AM's
  /// reply (matched by iteration echo).
  void coordinate(std::uint64_t iteration,
                  std::function<void(const DecisionMsg&)> on_decision);

  /// Marks a Ready worker as participating in training (called by the job
  /// when the worker joins after an adjustment).
  void set_training();

  /// True while a coordination decision is outstanding.
  bool has_pending_decision() const { return static_cast<bool>(pending_decision_); }

  /// Graceful stop; detaches from the bus.
  void shutdown();

  /// Fault hook: the ready report is never sent (a hung or partitioned
  /// container that finished starting but cannot reach the AM). The AM's
  /// report timeout eventually evicts this worker from the plan.
  void fault_suppress_report() { suppress_report_ = true; }
  bool report_suppressed() const { return suppress_report_; }

  /// Coordinates re-sent because no decision arrived within
  /// `decision_timeout` (normally zero; nonzero after an AM crash ate the
  /// reply).
  std::uint64_t decision_resends() const { return decision_resends_; }

  /// Total Launching time and Initializing time actually incurred (Fig 11
  /// breakdown inputs).
  Seconds measured_start_time() const { return measured_start_; }
  Seconds measured_init_time() const { return measured_init_; }

  /// Replica fingerprint (engine state + iteration) for consistency checks.
  std::uint64_t state_checksum() const {
    return engine_->state_checksum() ^ (engine_->iteration() * 0x9e3779b97f4a7c15ULL);
  }

  /// Nominal state sizes by location, derived from the hook registry.
  Bytes gpu_state_bytes() const { return hooks_.nominal_bytes(StateLocation::kGpu); }
  Bytes cpu_state_bytes() const { return hooks_.nominal_bytes(StateLocation::kCpu); }

 private:
  sim::Simulator& sim_;
  std::string job_id_;
  std::string name_;
  std::string am_name_;
  int id_;
  topo::GpuId gpu_;
  WorkerState state_;
  WorkerParams params_;
  Rng rng_;
  std::unique_ptr<train::TrainingEngine> engine_;
  HookRegistry hooks_;
  std::unique_ptr<transport::ReliableEndpoint> endpoint_;
  std::function<void(const DecisionMsg&)> pending_decision_;
  /// Iteration echoed in the pending coordinate; decisions for any other
  /// iteration are stale replays (lost-ack re-sends answered by a recovered
  /// AM) and must not consume the pending slot.
  std::uint64_t pending_iteration_ = 0;
  sim::EventId decision_timer_ = 0;
  std::uint64_t decision_resends_ = 0;
  bool suppress_report_ = false;
  Seconds measured_start_ = 0;
  Seconds measured_init_ = 0;

  void register_builtin_hooks();
  void handle(const transport::Message& msg);
  void send_coordinate();
  void arm_decision_timer();
};

}  // namespace elan
