#include "elan/replication.h"

#include <algorithm>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace elan {

const char* to_string(ReplicationStrategy strategy) {
  switch (strategy) {
    case ReplicationStrategy::kElan: return "Elan";
    case ReplicationStrategy::kNearestSerial: return "nearest-serial";
    case ReplicationStrategy::kSingleSource: return "single-source";
    case ReplicationStrategy::kBlindSources: return "blind-sources";
  }
  return "?";
}

ReplicationPlan ReplicationPlanner::plan(const ReplicationRequest& request) const {
  require(!request.existing.empty(), "replication: no source workers");
  static auto& plans_total = obs::MetricsRegistry::instance().counter(
      "elan_replication_plans_total", "Replication plans computed");
  plans_total.add(1);
  ELAN_TRACE_SCOPE("replication", "plan");

  ReplicationPlan plan;
  if (request.joining.empty()) return plan;
  ELAN_TRACE_COUNTER("replication", "joining_workers",
                     static_cast<double>(request.joining.size()));

  // --- Source selection -----------------------------------------------------
  //
  // kElan / kNearestSerial: prefer the highest-bandwidth link level; among
  // equal levels, prefer the source whose physical resources (its own GPU,
  // the NIC/QPI/bridge the transfer would cross) are projected to free up
  // earliest — this spreads concurrent replications over distinct NICs and
  // sockets to "maximize the bandwidth utilization" (§IV-3).
  //
  // kSingleSource: everything from the lowest-id worker (what a centralised
  // PS/checkpoint design effectively does).
  //
  // kBlindSources: round-robin over existing workers, ignoring topology.
  std::map<std::string, Seconds> projected_busy;
  auto resource_keys = [&](topo::GpuId src_gpu, int src_worker, topo::GpuId dst_gpu) {
    auto keys = topology_->transfer_resources(src_gpu, dst_gpu);
    keys.push_back("src-worker-" + std::to_string(src_worker));
    return keys;
  };
  auto earliest_start = [&](const std::vector<std::string>& keys) {
    Seconds start = 0;
    for (const auto& k : keys) {
      auto it = projected_busy.find(k);
      if (it != projected_busy.end()) start = std::max(start, it->second);
    }
    return start;
  };

  std::size_t round_robin = 0;
  std::map<int, int> source_load;  // tie-break: spread over equally-placed sources
  for (const auto& [dest_worker, dest_gpu] : request.joining) {
    int best_source = -1;
    switch (strategy_) {
      case ReplicationStrategy::kSingleSource:
        best_source = request.existing.begin()->first;
        break;
      case ReplicationStrategy::kBlindSources: {
        auto it = request.existing.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(round_robin++ %
                                                     request.existing.size()));
        best_source = it->first;
        break;
      }
      case ReplicationStrategy::kElan:
      case ReplicationStrategy::kNearestSerial: {
        int best_level = 1 << 30;
        Seconds best_start = 0;
        int best_load = 1 << 30;
        for (const auto& [src_worker, src_gpu] : request.existing) {
          const int level = static_cast<int>(topology_->link_level(dest_gpu, src_gpu));
          const Seconds start =
              earliest_start(resource_keys(src_gpu, src_worker, dest_gpu));
          const int load = source_load[src_worker];
          const bool better = level < best_level ||
                              (level == best_level && start < best_start) ||
                              (level == best_level && start == best_start &&
                               load < best_load);
          if (better) {
            best_level = level;
            best_start = start;
            best_load = load;
            best_source = src_worker;
          }
        }
        break;
      }
    }
    ELAN_CHECK(best_source >= 0, "replication: no source selected");
    ++source_load[best_source];

    ReplicationTransfer t;
    t.source_worker = best_source;
    t.dest_worker = dest_worker;
    t.source_gpu = request.existing.at(best_source);
    t.dest_gpu = dest_gpu;
    t.level = topology_->link_level(t.source_gpu, t.dest_gpu);
    t.gpu_transfer_time = bandwidth_->transfer_time(t.level, request.gpu_state_bytes);
    // CPU states go over the control network ("even we use web socket to
    // replicate them" — §IV-3) and overlap with the GPU transfer.
    t.cpu_transfer_time = bandwidth_->control_transfer_time(request.cpu_state_bytes);

    // Reserve this transfer's resources so the next source choice sees them.
    {
      const Seconds start = earliest_start(resource_keys(t.source_gpu, best_source,
                                                         t.dest_gpu));
      const Seconds finish = start + t.duration();
      for (const auto& k : resource_keys(t.source_gpu, best_source, t.dest_gpu)) {
        projected_busy[k] = std::max(projected_busy[k], finish);
      }
    }
    plan.transfers.push_back(t);
  }

  // --- Scheduling -------------------------------------------------------------
  // A transfer starts when every physical resource it crosses is free, and a
  // source worker's GPU issues one outgoing copy at a time. The serial
  // strategies additionally funnel everything through one virtual token.
  const bool serial = strategy_ == ReplicationStrategy::kNearestSerial ||
                      strategy_ == ReplicationStrategy::kSingleSource;
  std::map<std::string, Seconds> resource_free_at;
  for (auto& t : plan.transfers) {
    auto keys = resource_keys(t.source_gpu, t.source_worker, t.dest_gpu);
    if (serial) keys.push_back("global-serial-token");
    Seconds start = 0;
    for (const auto& k : keys) {
      auto it = resource_free_at.find(k);
      if (it != resource_free_at.end()) start = std::max(start, it->second);
    }
    t.start = start;
    for (const auto& k : keys) resource_free_at[k] = t.finish();
    plan.total_time = std::max(plan.total_time, t.finish());
    plan.serial_time += t.duration();
  }
  return plan;
}

}  // namespace elan
