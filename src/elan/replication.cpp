#include "elan/replication.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <tuple>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace elan {

Bytes default_replication_chunk_bytes() {
  static const Bytes cached = [] {
    if (const char* env = std::getenv("ELAN_REPL_CHUNK_BYTES")) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0' && parsed > 0) return static_cast<Bytes>(parsed);
    }
    return static_cast<Bytes>(4_MiB);
  }();
  return cached;
}

const char* to_string(ReplicationStrategy strategy) {
  switch (strategy) {
    case ReplicationStrategy::kElan: return "Elan";
    case ReplicationStrategy::kNearestSerial: return "nearest-serial";
    case ReplicationStrategy::kSingleSource: return "single-source";
    case ReplicationStrategy::kBlindSources: return "blind-sources";
  }
  return "?";
}

ReplicationPlan ReplicationPlanner::plan(const ReplicationRequest& request) const {
  require(!request.existing.empty(), "replication: no source workers");
  static auto& plans_total = obs::MetricsRegistry::instance().counter(
      "elan_replication_plans_total", "Replication plans computed");
  plans_total.add(1);
  ELAN_TRACE_SCOPE("replication", "plan");

  ReplicationPlan plan;
  if (request.joining.empty()) return plan;
  ELAN_TRACE_COUNTER("replication", "joining_workers",
                     static_cast<double>(request.joining.size()));

  // --- Source selection -----------------------------------------------------
  //
  // kElan / kNearestSerial: prefer the highest-bandwidth link level; among
  // equal levels, prefer the source whose physical resources (its own GPU,
  // the NIC/QPI/bridge the transfer would cross) are projected to free up
  // earliest — this spreads concurrent replications over distinct NICs and
  // sockets to "maximize the bandwidth utilization" (§IV-3).
  //
  // kSingleSource: everything from the lowest-id worker (what a centralised
  // PS/checkpoint design effectively does).
  //
  // kBlindSources: round-robin over existing workers, ignoring topology.
  std::map<std::string, Seconds> projected_busy;
  auto resource_keys = [&](topo::GpuId src_gpu, int src_worker, topo::GpuId dst_gpu) {
    auto keys = topology_->transfer_resources(src_gpu, dst_gpu);
    keys.push_back("src-worker-" + std::to_string(src_worker));
    return keys;
  };
  auto earliest_start = [&](const std::vector<std::string>& keys) {
    Seconds start = 0;
    for (const auto& k : keys) {
      auto it = projected_busy.find(k);
      if (it != projected_busy.end()) start = std::max(start, it->second);
    }
    return start;
  };

  std::size_t round_robin = 0;
  std::map<int, int> source_load;  // tie-break: spread over equally-placed sources
  for (const auto& [dest_worker, dest_gpu] : request.joining) {
    int best_source = -1;
    switch (strategy_) {
      case ReplicationStrategy::kSingleSource:
        best_source = request.existing.begin()->first;
        break;
      case ReplicationStrategy::kBlindSources: {
        auto it = request.existing.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(round_robin++ %
                                                     request.existing.size()));
        best_source = it->first;
        break;
      }
      case ReplicationStrategy::kElan:
      case ReplicationStrategy::kNearestSerial: {
        int best_level = 1 << 30;
        Seconds best_start = 0;
        int best_load = 1 << 30;
        for (const auto& [src_worker, src_gpu] : request.existing) {
          const int level = static_cast<int>(topology_->link_level(dest_gpu, src_gpu));
          const Seconds start =
              earliest_start(resource_keys(src_gpu, src_worker, dest_gpu));
          const int load = source_load[src_worker];
          const bool better = level < best_level ||
                              (level == best_level && start < best_start) ||
                              (level == best_level && start == best_start &&
                               load < best_load);
          if (better) {
            best_level = level;
            best_start = start;
            best_load = load;
            best_source = src_worker;
          }
        }
        break;
      }
    }
    ELAN_CHECK(best_source >= 0, "replication: no source selected");
    ++source_load[best_source];

    ReplicationTransfer t;
    t.source_worker = best_source;
    t.dest_worker = dest_worker;
    t.source_gpu = request.existing.at(best_source);
    t.dest_gpu = dest_gpu;
    t.level = topology_->link_level(t.source_gpu, t.dest_gpu);
    t.gpu_transfer_time = bandwidth_->transfer_time(t.level, request.gpu_state_bytes);
    // CPU states go over the control network ("even we use web socket to
    // replicate them" — §IV-3) and overlap with the GPU transfer.
    t.cpu_transfer_time = bandwidth_->control_transfer_time(request.cpu_state_bytes);

    // Reserve this transfer's resources so the next source choice sees them.
    {
      const Seconds start = earliest_start(resource_keys(t.source_gpu, best_source,
                                                         t.dest_gpu));
      const Seconds finish = start + t.duration();
      for (const auto& k : resource_keys(t.source_gpu, best_source, t.dest_gpu)) {
        projected_busy[k] = std::max(projected_busy[k], finish);
      }
    }
    plan.transfers.push_back(t);
  }

  // --- Scheduling -------------------------------------------------------------
  // A transfer starts when every physical resource it crosses is free, and a
  // source worker's GPU issues one outgoing copy at a time. The serial
  // strategies additionally funnel everything through one virtual token.
  const bool serial = strategy_ == ReplicationStrategy::kNearestSerial ||
                      strategy_ == ReplicationStrategy::kSingleSource;
  std::map<std::string, Seconds> resource_free_at;
  for (auto& t : plan.transfers) {
    auto keys = resource_keys(t.source_gpu, t.source_worker, t.dest_gpu);
    if (serial) keys.push_back("global-serial-token");
    Seconds start = 0;
    for (const auto& k : keys) {
      auto it = resource_free_at.find(k);
      if (it != resource_free_at.end()) start = std::max(start, it->second);
    }
    t.start = start;
    for (const auto& k : keys) resource_free_at[k] = t.finish();
    plan.total_time = std::max(plan.total_time, t.finish());
    plan.serial_time += t.duration();
  }
  return plan;
}

ChunkSchedule ReplicationPlanner::chunk_plan(const ReplicationRequest& request,
                                             const ChunkPlanOptions& options) const {
  require(!request.existing.empty(), "replication: no source workers");
  static auto& chunk_plans_total = obs::MetricsRegistry::instance().counter(
      "elan_replication_chunk_plans_total", "Chunk-granular replication schedules computed");
  chunk_plans_total.add(1);
  ELAN_TRACE_SCOPE("replication", "chunk_plan");

  ChunkSchedule sched;
  sched.chunk_bytes =
      options.chunk_bytes > 0 ? options.chunk_bytes : default_replication_chunk_bytes();
  if (request.joining.empty()) return sched;

  const Bytes gpu_bytes = request.gpu_state_bytes;
  sched.num_chunks =
      gpu_bytes == 0 ? 1
                     : static_cast<std::uint32_t>((gpu_bytes + sched.chunk_bytes - 1) /
                                                  sched.chunk_bytes);
  sched.cpu_time = bandwidth_->control_transfer_time(request.cpu_state_bytes);
  auto chunk_size = [&](std::uint32_t chunk) -> Bytes {
    if (gpu_bytes == 0) return 0;
    return std::min(sched.chunk_bytes,
                    gpu_bytes - static_cast<Bytes>(chunk) * sched.chunk_bytes);
  };

  const bool serial = strategy_ == ReplicationStrategy::kNearestSerial ||
                      strategy_ == ReplicationStrategy::kSingleSource;
  const bool relay =
      options.relay_sources && strategy_ == ReplicationStrategy::kElan;

  // Shared-resource keys are interned to dense indices once per GPU pair: the
  // greedy loop below re-ranks every candidate on each commitment and must
  // not rebuild strings each time.
  std::map<std::string, std::size_t> key_ids;
  std::vector<Seconds> resource_free;
  auto intern = [&](const std::string& key) {
    auto [it, fresh] = key_ids.emplace(key, resource_free.size());
    if (fresh) resource_free.push_back(0);
    return it->second;
  };
  const std::size_t serial_token = intern("global-serial-token");
  std::map<std::pair<topo::GpuId, topo::GpuId>, std::vector<std::size_t>> pair_keys;
  auto keys_for = [&](topo::GpuId src, topo::GpuId dst) -> const std::vector<std::size_t>& {
    auto [it, fresh] = pair_keys.try_emplace({src, dst});
    if (fresh) {
      for (const auto& key : topology_->transfer_resources(src, dst)) {
        it->second.push_back(intern(key));
      }
      if (serial) it->second.push_back(serial_token);
    }
    return it->second;
  };

  // Endpoints are full duplex: one outgoing chunk and one incoming chunk at a
  // time, tracked separately so a relay can serve its prefix while its own
  // suffix streams in.
  struct Source {
    int worker = -1;
    topo::GpuId gpu = -1;
    Seconds busy_send = 0;
    int load = 0;  // chunks committed; tie-break spreads equally-near sources
  };
  std::vector<Source> sources;
  for (const auto& [worker, gpu] : request.existing) sources.push_back({worker, gpu});

  struct Dest {
    int worker = -1;
    topo::GpuId gpu = -1;
    std::uint32_t have = 0;  // next chunk needed == verified-prefix length
    bool resumed = false;    // pre-verified prefix: CPU state already delivered
    Seconds busy_send = 0;
    Seconds busy_recv = 0;
    int load = 0;
    std::vector<Seconds> ready_at;  // per chunk: when the relay prefix holds it
    int blind_source = -1;          // kBlindSources: pinned round-robin source
  };
  std::vector<Dest> dests;
  for (const auto& [worker, gpu] : request.joining) {
    Dest d;
    d.worker = worker;
    d.gpu = gpu;
    d.ready_at.assign(sched.num_chunks, std::numeric_limits<Seconds>::infinity());
    if (auto it = options.verified.find(worker); it != options.verified.end()) {
      d.have = std::min(it->second, sched.num_chunks);
      d.resumed = d.have > 0;
      std::fill(d.ready_at.begin(), d.ready_at.begin() + d.have, 0.0);
    }
    d.blind_source =
        sources[dests.size() % sources.size()].worker;  // dest-id order round robin
    dests.push_back(std::move(d));
  }

  std::size_t remaining = 0;
  for (const auto& d : dests) remaining += sched.num_chunks - d.have;

  // Greedy work-conserving list scheduler: each round ranks, for every
  // destination, the best source for its next needed chunk — the whole-blob
  // selection order (link level, then earliest start, then source load) — and
  // commits the globally earliest-starting candidate (ties to the lowest
  // destination id). Strictly one chunk ahead per destination keeps delivery
  // in stream order, which is what makes the received prefix relayable.
  while (remaining > 0) {
    struct Candidate {
      int level = 1 << 30;
      Seconds start = std::numeric_limits<Seconds>::infinity();
      int load = 1 << 30;
      bool relay = false;
      int worker = -1;
      topo::GpuId gpu = -1;
      Seconds duration = 0;
      bool better_than(const Candidate& o) const {
        if (level != o.level) return level < o.level;
        if (start != o.start) return start < o.start;
        if (load != o.load) return load < o.load;
        if (relay != o.relay) return !relay;  // prefer replica over relay on ties
        return worker < o.worker;
      }
    };

    std::size_t best_dest = dests.size();
    Candidate best;
    for (std::size_t di = 0; di < dests.size(); ++di) {
      Dest& d = dests[di];
      if (d.have >= sched.num_chunks) continue;
      const std::uint32_t chunk = d.have;
      const auto bytes_time = [&](topo::LinkLevel level) {
        return bandwidth_->transfer_time(level, chunk_size(chunk));
      };

      Candidate dest_best;
      auto consider = [&](int worker, topo::GpuId gpu, Seconds available, Seconds send_busy,
                          int load, bool is_relay) {
        Candidate c;
        c.level = static_cast<int>(topology_->link_level(gpu, d.gpu));
        c.start = std::max({available, send_busy, d.busy_recv});
        for (std::size_t key : keys_for(gpu, d.gpu)) {
          c.start = std::max(c.start, resource_free[key]);
        }
        c.load = load;
        c.relay = is_relay;
        c.worker = worker;
        c.gpu = gpu;
        c.duration = bytes_time(topology_->link_level(gpu, d.gpu));
        if (c.better_than(dest_best)) dest_best = c;
      };

      switch (strategy_) {
        case ReplicationStrategy::kSingleSource:
          consider(sources[0].worker, sources[0].gpu, 0, sources[0].busy_send,
                   sources[0].load, false);
          break;
        case ReplicationStrategy::kBlindSources:
          for (auto& s : sources) {
            if (s.worker != d.blind_source) continue;
            consider(s.worker, s.gpu, 0, s.busy_send, s.load, false);
          }
          break;
        case ReplicationStrategy::kElan:
        case ReplicationStrategy::kNearestSerial:
          for (auto& s : sources) {
            consider(s.worker, s.gpu, 0, s.busy_send, s.load, false);
          }
          break;
      }
      if (relay) {
        for (std::size_t pi = 0; pi < dests.size(); ++pi) {
          if (pi == di) continue;
          Dest& p = dests[pi];
          if (p.have <= chunk) continue;  // prefix does not reach this chunk yet
          consider(p.worker, p.gpu, p.ready_at[chunk], p.busy_send, p.load, true);
        }
      }

      ELAN_CHECK(dest_best.worker >= 0, "chunk replication: no source for destination");
      if (best_dest == dests.size() || dest_best.start < best.start ||
          (dest_best.start == best.start && d.worker < dests[best_dest].worker)) {
        best_dest = di;
        best = dest_best;
      }
    }

    ELAN_CHECK(best_dest < dests.size(), "chunk replication: scheduler stalled");
    Dest& d = dests[best_dest];
    ChunkTransfer t;
    t.source_worker = best.worker;
    t.dest_worker = d.worker;
    t.source_gpu = best.gpu;
    t.dest_gpu = d.gpu;
    t.level = topology_->link_level(best.gpu, d.gpu);
    t.chunk = d.have;
    t.bytes = chunk_size(d.have);
    t.relay = best.relay;
    t.start = best.start;
    t.duration = best.duration;
    sched.transfers.push_back(t);
    sched.serial_time += t.duration;

    const Seconds finish = t.finish();
    for (std::size_t key : keys_for(best.gpu, d.gpu)) resource_free[key] = finish;
    d.busy_recv = finish;
    d.ready_at[t.chunk] = finish;
    ++d.have;
    --remaining;
    if (best.relay) {
      Dest& p = dests[static_cast<std::size_t>(
          std::find_if(dests.begin(), dests.end(),
                       [&](const Dest& x) { return x.worker == best.worker; }) -
          dests.begin())];
      p.busy_send = finish;
      ++p.load;
    } else {
      for (auto& s : sources) {
        if (s.worker != best.worker) continue;
        s.busy_send = finish;
        ++s.load;
      }
    }
  }

  for (const auto& d : dests) {
    Seconds done = d.resumed ? 0 : sched.cpu_time;
    for (const auto& t : sched.transfers) {
      if (t.dest_worker == d.worker) done = std::max(done, t.finish());
    }
    sched.completion[d.worker] = done;
    sched.total_time = std::max(sched.total_time, done);
  }
  std::sort(sched.transfers.begin(), sched.transfers.end(),
            [](const ChunkTransfer& a, const ChunkTransfer& b) {
              return std::tie(a.start, a.dest_worker, a.chunk) <
                     std::tie(b.start, b.dest_worker, b.chunk);
            });
  return sched;
}

}  // namespace elan
