// Concurrent IO-free state replication (paper §IV).
//
// Given the topology, the set of existing workers and the set of new workers,
// the planner:
//   1. assigns each new worker the *nearest* existing worker as its source
//      (P2P > SHM > NET), exploiting that every existing worker holds an
//      identical copy of the state (data parallelism);
//   2. spreads load: among equally-near sources, prefers the one serving the
//      fewest destinations;
//   3. runs replications concurrently, except where they contend on a shared
//      physical resource (e.g. two transfers both crossing one node's QPI
//      link), which are serialised (§IV-3);
//   4. overlaps the small CPU-state transfer (over the control network) with
//      the large GPU-state transfer, so the pair costs max(gpu, cpu).
//
// The plan is pure data: callers execute it (moving real blob bytes) and/or
// price it. No filesystem IO and no CPU-GPU copies appear anywhere — that is
// the "IO-free" property the benches contrast with checkpoint-based S&R.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "topology/bandwidth.h"
#include "topology/topology.h"

namespace elan {

struct ReplicationTransfer {
  int source_worker = -1;
  int dest_worker = -1;
  topo::GpuId source_gpu = -1;
  topo::GpuId dest_gpu = -1;
  topo::LinkLevel level = topo::LinkLevel::kL1;
  Seconds gpu_transfer_time = 0;  // parameters + optimizer over the GPU link
  Seconds cpu_transfer_time = 0;  // loader/runtime state over the control net
  Seconds start = 0;              // scheduled start (contention-adjusted)
  Seconds duration() const { return std::max(gpu_transfer_time, cpu_transfer_time); }
  Seconds finish() const { return start + duration(); }
};

struct ReplicationPlan {
  std::vector<ReplicationTransfer> transfers;
  /// Makespan of the contention-aware schedule — the replication step's
  /// contribution to adjustment latency.
  Seconds total_time = 0;
  /// Sum of all per-transfer durations (what a serial executor would pay);
  /// total_time / serial_time measures the concurrency win.
  Seconds serial_time = 0;
};

struct ReplicationRequest {
  /// worker id -> GPU for workers that already hold the state.
  std::map<int, topo::GpuId> existing;
  /// worker id -> GPU for workers that need the state.
  std::map<int, topo::GpuId> joining;
  Bytes gpu_state_bytes = 0;
  Bytes cpu_state_bytes = 0;
};

/// Planner strategies. kElan is the paper's design; the others are ablation
/// baselines quantifying what each ingredient buys (bench/ablation_replication).
enum class ReplicationStrategy {
  kElan,           // topology-aware sources + concurrent contention-aware schedule
  kNearestSerial,  // topology-aware sources, but one transfer at a time
  kSingleSource,   // all state from one worker (PS/checkpoint-like), serialised
  kBlindSources,   // round-robin sources ignoring topology, concurrent schedule
};

const char* to_string(ReplicationStrategy strategy);

class ReplicationPlanner {
 public:
  ReplicationPlanner(const topo::Topology& topology, const topo::BandwidthModel& bandwidth,
                     ReplicationStrategy strategy = ReplicationStrategy::kElan)
      : topology_(&topology), bandwidth_(&bandwidth), strategy_(strategy) {}

  ReplicationStrategy strategy() const { return strategy_; }

  ReplicationPlan plan(const ReplicationRequest& request) const;

 private:
  const topo::Topology* topology_;
  const topo::BandwidthModel* bandwidth_;
  ReplicationStrategy strategy_;
};

}  // namespace elan
