// Concurrent IO-free state replication (paper §IV).
//
// Given the topology, the set of existing workers and the set of new workers,
// the planner:
//   1. assigns each new worker the *nearest* existing worker as its source
//      (P2P > SHM > NET), exploiting that every existing worker holds an
//      identical copy of the state (data parallelism);
//   2. spreads load: among equally-near sources, prefers the one serving the
//      fewest destinations;
//   3. runs replications concurrently, except where they contend on a shared
//      physical resource (e.g. two transfers both crossing one node's QPI
//      link), which are serialised (§IV-3);
//   4. overlaps the small CPU-state transfer (over the control network) with
//      the large GPU-state transfer, so the pair costs max(gpu, cpu).
//
// The plan is pure data: callers execute it (moving real blob bytes) and/or
// price it. No filesystem IO and no CPU-GPU copies appear anywhere — that is
// the "IO-free" property the benches contrast with checkpoint-based S&R.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "topology/bandwidth.h"
#include "topology/topology.h"

namespace elan {

struct ReplicationTransfer {
  int source_worker = -1;
  int dest_worker = -1;
  topo::GpuId source_gpu = -1;
  topo::GpuId dest_gpu = -1;
  topo::LinkLevel level = topo::LinkLevel::kL1;
  Seconds gpu_transfer_time = 0;  // parameters + optimizer over the GPU link
  Seconds cpu_transfer_time = 0;  // loader/runtime state over the control net
  Seconds start = 0;              // scheduled start (contention-adjusted)
  Seconds duration() const { return std::max(gpu_transfer_time, cpu_transfer_time); }
  Seconds finish() const { return start + duration(); }
};

struct ReplicationPlan {
  std::vector<ReplicationTransfer> transfers;
  /// Makespan of the contention-aware schedule — the replication step's
  /// contribution to adjustment latency.
  Seconds total_time = 0;
  /// Sum of all per-transfer durations (what a serial executor would pay);
  /// total_time / serial_time measures the concurrency win.
  Seconds serial_time = 0;
};

struct ReplicationRequest {
  /// worker id -> GPU for workers that already hold the state.
  std::map<int, topo::GpuId> existing;
  /// worker id -> GPU for workers that need the state.
  std::map<int, topo::GpuId> joining;
  Bytes gpu_state_bytes = 0;
  Bytes cpu_state_bytes = 0;
};

// --- Chunk-granular data plane -----------------------------------------------
//
// The whole-blob plan above moves each destination's state as one atomic
// transfer, so two transfers contending on a shared link (one QPI, one NIC)
// head-of-line block each other for a full blob time, and a freshly
// replicated joiner contributes nothing while later joiners still wait. The
// chunk schedule splits the state stream into fixed-size chunks and assigns
// every (destination, chunk) pair its own source, start and duration:
//
//   - contending transfers interleave chunk-by-chunk on the shared resource
//     instead of serialising wholesale;
//   - delivery per destination is strictly in stream order, so the received
//     chunks always form a *verified prefix* — which makes a destination an
//     eligible source for exactly that prefix (relay/tree pipelining: 1->N
//     fan-out drops from N*T toward T + (N-1)*chunk);
//   - a resume after a mid-transfer source death re-plans only the missing
//     suffix (ChunkPlanOptions::verified).
//
// Endpoints are full duplex (a relay receives its suffix while serving its
// prefix); each endpoint issues at most one outgoing and one incoming chunk
// at a time, and shared physical resources carry one chunk at a time.

/// Chunk size used when ChunkPlanOptions::chunk_bytes == 0: the
/// ELAN_REPL_CHUNK_BYTES environment variable, or 4 MiB.
Bytes default_replication_chunk_bytes();

struct ChunkTransfer {
  int source_worker = -1;
  int dest_worker = -1;
  topo::GpuId source_gpu = -1;
  topo::GpuId dest_gpu = -1;
  topo::LinkLevel level = topo::LinkLevel::kL1;
  std::uint32_t chunk = 0;  // index into the chunked state stream
  Bytes bytes = 0;          // nominal payload of this chunk
  bool relay = false;       // source is a joining destination serving its prefix
  Seconds start = 0;
  Seconds duration = 0;
  Seconds finish() const { return start + duration; }
};

struct ChunkSchedule {
  Bytes chunk_bytes = 0;
  std::uint32_t num_chunks = 0;
  /// Ascending (start, dest, chunk); per destination the chunk indices are
  /// strictly in order (the prefix property executors and relays rely on).
  std::vector<ChunkTransfer> transfers;
  /// Makespan (includes the overlapped CPU-state transfer).
  Seconds total_time = 0;
  /// Sum of per-chunk durations (what a serial executor would pay).
  Seconds serial_time = 0;
  /// Control-network CPU-state transfer, overlapped with the GPU chunks.
  Seconds cpu_time = 0;
  /// Per-destination completion time (last chunk verified, CPU state in).
  std::map<int, Seconds> completion;
};

struct ChunkPlanOptions {
  /// Chunk size; 0 uses default_replication_chunk_bytes().
  Bytes chunk_bytes = 0;
  /// Let destinations serve their verified prefix onward (kElan only). Off,
  /// the schedule is the whole-blob plan cut into chunks.
  bool relay_sources = true;
  /// Resume after a source death: chunks each destination already holds.
  /// Destinations listed here skip the (already delivered) CPU-state copy.
  std::map<int, std::uint32_t> verified;
};

/// Planner strategies. kElan is the paper's design; the others are ablation
/// baselines quantifying what each ingredient buys (bench/ablation_replication).
enum class ReplicationStrategy {
  kElan,           // topology-aware sources + concurrent contention-aware schedule
  kNearestSerial,  // topology-aware sources, but one transfer at a time
  kSingleSource,   // all state from one worker (PS/checkpoint-like), serialised
  kBlindSources,   // round-robin sources ignoring topology, concurrent schedule
};

const char* to_string(ReplicationStrategy strategy);

class ReplicationPlanner {
 public:
  ReplicationPlanner(const topo::Topology& topology, const topo::BandwidthModel& bandwidth,
                     ReplicationStrategy strategy = ReplicationStrategy::kElan)
      : topology_(&topology), bandwidth_(&bandwidth), strategy_(strategy) {}

  ReplicationStrategy strategy() const { return strategy_; }

  ReplicationPlan plan(const ReplicationRequest& request) const;

  /// Chunk-granular, work-conserving schedule (see the data-plane comment
  /// above). With relay off and chunk_bytes >= gpu_state_bytes this
  /// degenerates to plan(): one chunk per destination, same sources, same
  /// starts, same makespan.
  ChunkSchedule chunk_plan(const ReplicationRequest& request,
                           const ChunkPlanOptions& options = {}) const;

 private:
  const topo::Topology* topology_;
  const topo::BandwidthModel* bandwidth_;
  ReplicationStrategy strategy_;
};

}  // namespace elan
