// ElasticJob — the end-to-end elastic training job (paper Fig 2).
//
// Owns the application master, the worker processes, the global serial data
// sampler, the LR controller and the training loop, and executes resource
// adjustments with either Elan's mechanism (asynchronous coordination +
// concurrent IO-free replication) or the Shutdown-&-Restart baseline
// (checkpoint to the shared filesystem, kill, relaunch, reload).
//
// The training loop is lockstep across workers — data-parallel training is
// synchronised by allreduce anyway — while the control plane (reports,
// coordinates, decisions) runs over the real in-sim message bus. Every
// worker holds real state bytes; after any sequence of adjustments all
// replicas must be bit-identical (checked by `consistent()`).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "comm/group.h"
#include "common/rng.h"
#include "data/sampler.h"
#include "memory/device_memory.h"
#include "elan/hybrid_scaling.h"
#include "elan/master.h"
#include "elan/replication.h"
#include "elan/worker.h"
#include "storage/filesystem.h"
#include "train/lr_schedule.h"
#include "train/throughput.h"
#include "transport/bus.h"
#include "transport/kv_store.h"

namespace elan {

/// Which elasticity mechanism executes adjustments.
enum class Mechanism { kElan, kShutdownRestart };

const char* to_string(Mechanism mechanism);

/// Data-loading semantics (§V-C). Serial is Elan's design (loader state is
/// one cursor, repartition free); chunk-based is the conventional scheme
/// (record table, real repartition work on every adjustment).
enum class DataSemantics { kSerial, kChunk };

const char* to_string(DataSemantics semantics);

struct JobConfig {
  std::string job_id = "job0";
  train::ModelSpec model;
  train::EngineKind engine = train::EngineKind::kDynamicGraph;
  /// Custom framework integration: when set, every worker's engine comes
  /// from this factory (e.g. minidl::MiniDlEngine) instead of `engine`.
  WorkerProcess::EngineFactory engine_factory;
  int initial_workers = 4;
  /// GPUs for the initial workers; defaults to 0..initial_workers-1 when
  /// empty. Size must equal initial_workers otherwise.
  std::vector<topo::GpuId> initial_gpus;
  int initial_total_batch = 128;
  double base_lr = 0.1;
  std::vector<std::uint64_t> lr_milestones;  // iterations of x0.1 decays
  /// Coordinate with the AM every this many iterations (paper: configurable
  /// trade-off between elasticity and training efficiency).
  std::uint64_t coordination_interval = 1;
  HybridScalingParams hybrid;
  Mechanism mechanism = Mechanism::kElan;
  DataSemantics data_semantics = DataSemantics::kSerial;
  /// Chunk size when data_semantics == kChunk.
  std::uint64_t chunk_size = 4096;
  /// Coefficient of variation of per-worker compute time. With a non-zero
  /// value each worker's compute finishes at its own (random) time and the
  /// allreduce barrier waits for the slowest — synchronous training's
  /// straggler effect emerges rather than being modelled.
  double compute_jitter_cv = 0.0;
  WorkerParams worker_params;
  comm::GroupParams group_params;
  /// Application-master fault-tolerance knobs (report-timeout eviction).
  AmParams am;
  /// How long the scheduler-facing side waits for an adjust reply before
  /// re-sending the request (same request id; the AM replays its cached
  /// verdict for duplicates). Covers the reply being lost in an AM crash.
  Seconds adjust_reply_timeout = 2.0;
  /// Replication data-plane chunk size; 0 uses ELAN_REPL_CHUNK_BYTES (4 MiB
  /// default). Whole-blob behaviour is the degenerate single-chunk schedule
  /// (set this >= the model's GPU state bytes).
  Bytes replication_chunk_bytes = 0;
  /// Relay pipelining: a joining worker serves its verified chunk prefix to
  /// later joiners (§IV-3 extended into a transfer tree).
  bool replication_relay = true;
  std::uint64_t seed = 1;
};

/// Phase breakdown of one adjustment (Fig 11 for S&R; replication/reconstruct
/// for Elan).
struct AdjustmentBreakdown {
  Seconds checkpoint = 0;  // S&R only: D2H copy + FS write
  Seconds shutdown = 0;    // S&R only
  Seconds start = 0;       // S&R only: max process start over restarted workers
  Seconds init = 0;        // S&R only: framework init
  Seconds load = 0;        // S&R only: FS read + H2D copy
  Seconds replication = 0; // Elan only: concurrent IO-free replication
  Seconds reconstruct = 0; // both: communication-group reconstruction
  Seconds repartition = 0; // chunk semantics only: record-table rework
  Seconds total() const {
    return checkpoint + shutdown + start + init + load + replication + reconstruct +
           repartition;
  }
};

/// Chunk data-plane statistics of one adjustment's replication (Elan
/// mechanism only). The fault-regression suite pins these to prove a
/// mid-transfer source death resumes from the verified prefix instead of
/// re-copying whole blobs.
struct ReplicationStats {
  std::uint32_t num_chunks = 0;      // chunks in the state stream
  std::uint32_t chunks_copied = 0;   // chunk copies applied, across all rounds
  std::uint32_t chunks_relayed = 0;  // of which served by a joining destination
  std::uint32_t replans = 0;         // source-death resume rounds
  std::uint32_t chunks_resumed = 0;  // verified chunks carried across re-plans
};

struct AdjustmentRecord {
  AdjustmentType type{};
  std::uint64_t plan_version = 0;
  int workers_before = 0;
  int workers_after = 0;
  int total_batch_before = 0;
  int total_batch_after = 0;
  double lr_factor = 1.0;
  Seconds requested_at = 0;  // when the scheduler called the service API
  Seconds started_at = 0;    // when training paused for the adjustment
  Seconds completed_at = 0;  // when training resumed
  AdjustmentBreakdown breakdown;
  ReplicationStats replication_stats;
  /// The paper's Fig 15 metric: how long training was paused.
  Seconds pause_time() const { return completed_at - started_at; }
  /// End-to-end latency seen by the scheduler.
  Seconds service_time() const { return completed_at - requested_at; }
};

class ElasticJob {
 public:
  /// `memory_pool` (optional) enables GPU-memory accounting: every worker
  /// allocates its parameter/optimizer state and batch-dependent workspace
  /// on its device; oversubscription throws memory::OutOfMemory. A pool
  /// shared across jobs (as LiveScheduler does) turns placement conflicts
  /// into hard errors.
  ElasticJob(sim::Simulator& simulator, const topo::Topology& topology,
             const topo::BandwidthModel& bandwidth, storage::SimFilesystem& filesystem,
             transport::MessageBus& bus, transport::KvStore& kv, JobConfig config,
             memory::MemoryPool* memory_pool = nullptr);
  ~ElasticJob();

  ElasticJob(const ElasticJob&) = delete;
  ElasticJob& operator=(const ElasticJob&) = delete;

  /// Begins the training loop. The job runs until `stop_after_iterations`
  /// (if set) or until the simulator stops being driven.
  void start();

  /// Stops after the given *global* iteration count is reached.
  void stop_after_iterations(std::uint64_t iterations) { stop_at_iteration_ = iterations; }

  /// Stops the training loop at the next iteration boundary.
  void stop() { stop_requested_ = true; }

  // --- Scheduler-facing service --------------------------------------------
  //
  // These model the scheduler side of Fig 2 step 1: the request travels to
  // the AM as an `adjust_request` message over the control network; the AM's
  // reply carries the launch specs, upon which the "scheduler" (this façade)
  // starts the new worker processes.

  void request_scale_out(const std::vector<topo::GpuId>& gpus);
  void request_scale_in(const std::vector<int>& victims);
  void request_migration(const std::vector<int>& victims,
                         const std::vector<topo::GpuId>& target_gpus);

  // --- Fault injection / recovery (paper §V-D) ------------------------------

  /// Kills the application master (detaches it from the bus). Workers keep
  /// resending their unacknowledged messages.
  void crash_master();

  /// Rebuilds the AM from the state machine persisted in the KV store; the
  /// pending worker resends then complete against the recovered instance.
  void recover_master();

  // --- Introspection --------------------------------------------------------

  ApplicationMaster& master() { return *master_; }
  std::uint64_t iteration() const { return iteration_; }
  std::uint64_t epoch() const {
    return chunk_sampler_ ? chunk_sampler_->epoch() : sampler_.epoch();
  }
  int num_workers() const { return static_cast<int>(workers_.size()); }
  int total_batch() const { return total_batch_; }
  double current_lr() const { return lr_controller_.lr(iteration_); }
  const data::SerialSampler& sampler() const { return sampler_; }
  /// Non-null iff configured with chunk semantics.
  const data::ChunkSampler* chunk_sampler() const { return chunk_sampler_.get(); }
  const JobConfig& config() const { return config_; }
  bool running() const { return running_; }

  /// True while a service request is in flight or an adjustment is pending
  /// at the AM — the scheduler must not issue another request meanwhile.
  bool adjustment_pending() const {
    return requests_in_flight_ > 0 || !master_->idle();
  }

  std::vector<int> worker_ids() const;
  const WorkerProcess& worker(int id) const;

  /// All replica fingerprints; `consistent()` iff they are all equal.
  std::vector<std::uint64_t> worker_checksums() const;
  bool consistent() const;

  const std::vector<AdjustmentRecord>& adjustments() const { return adjustments_; }

  /// Sum of modelled iteration durations (compute + comm only). Comparing
  /// with elapsed virtual time yields the elasticity runtime overhead
  /// (Fig 14).
  Seconds ideal_training_time() const { return ideal_training_time_; }
  std::uint64_t samples_processed() const { return samples_processed_; }

  /// Current iteration duration under the present configuration.
  Seconds current_iteration_time() const;

  /// Marks a worker as a straggler: its iterations take `factor` times
  /// longer (e.g. a co-located job or a failing device). Synchronous
  /// data-parallel training runs at the pace of the slowest replica, which
  /// is why migration-based straggler mitigation (§VII) pays off.
  void set_worker_slowdown(int worker, double factor);
  double worker_slowdown(int worker) const;

  /// Fail-stops a worker (process/device crash). The failure is detected at
  /// the next iteration boundary: the dead replica is removed, the
  /// communication group is reconstructed (a short pause), and training
  /// continues on the survivors — elasticity doubling as worker fault
  /// tolerance. The scheduler can later scale back out to replace it.
  void fail_worker(int worker);
  int worker_failures() const { return worker_failures_; }

  /// True when every replica was lost (failures raced an adjustment that
  /// removed the rest): the job stopped cleanly instead of continuing.
  bool fatally_failed() const { return fatal_failure_; }

  /// Chaos-safe kill: fail-stops an active worker (like fail_worker) or a
  /// joining worker (killed mid-launch or mid-replication; the AM's report
  /// timeout / the dead-join tolerance in finish_adjustment clean it up).
  /// Returns false — and does nothing — for unknown/already-dead workers or
  /// when the kill would leave no active worker.
  bool fault_kill_worker(int worker);

  /// Requests in flight at the scheduler façade (0 when quiescent).
  int requests_in_flight() const { return requests_in_flight_; }

  /// Coordination replies the current round is still waiting for (0 when no
  /// round is in flight). Chaos diagnostics: a wedged round shows up here.
  int decisions_outstanding() const { return decisions_outstanding_; }

  /// Fires after every completed iteration (tests/benches hook metrics here).
  std::function<void(std::uint64_t iteration)> on_iteration;
  /// Fires when stop_after_iterations is reached.
  std::function<void()> on_stopped;

  // --- Fault-injection observation hooks (src/fault/FaultInjector) ----------

  /// Fires when an adjustment's execution begins, with the planned
  /// replication makespan (0 for S&R) — the anchor for "kill a worker
  /// mid-replication" fault events.
  std::function<void(AdjustmentType type, Seconds replication_time)> on_adjustment_started;
  /// Fires once per training iteration with the epoch and the per-worker
  /// shards consumed — the §V-C exactly-once invariant is checked on this.
  std::function<void(std::uint64_t epoch, const std::vector<data::SampleRange>& shards)>
      on_data_consumed;
  /// Mirrors the AM's phase transitions; survives AM crash/recovery (the job
  /// re-registers on the recovered instance). Same contract as
  /// ApplicationMaster::set_phase_listener: called under the AM lock, only
  /// schedule simulator events from it.
  std::function<void(AmPhase from, AmPhase to)> on_am_phase;
  /// Fires for every newly launched joining worker, before launch() — lets a
  /// fault plan suppress its report.
  std::function<void(WorkerProcess& worker)> on_worker_launched;

 private:
  sim::Simulator& sim_;
  const topo::Topology& topology_;
  const topo::BandwidthModel& bandwidth_;
  storage::SimFilesystem& fs_;
  transport::MessageBus& bus_;
  transport::KvStore& kv_;
  JobConfig config_;
  Rng rng_;

  train::ThroughputModel throughput_;
  HybridScaling hybrid_;
  ReplicationPlanner planner_;
  data::SerialSampler sampler_;
  std::unique_ptr<data::ChunkSampler> chunk_sampler_;  // only for kChunk
  train::LrController lr_controller_;

  std::unique_ptr<ApplicationMaster> master_;
  /// The scheduler's messaging identity for service requests/replies.
  std::unique_ptr<transport::ReliableEndpoint> sched_endpoint_;
  std::uint64_t next_request_id_ = 1;
  /// Pending adjust-reply re-send timers, keyed by request id; cancelled
  /// when the reply arrives.
  std::map<std::uint64_t, sim::EventId> adjust_resend_timers_;
  int requests_in_flight_ = 0;
  /// Request ids awaiting replies. An AM recovery loses the endpoint-level
  /// duplicate suppression, so a resent request can draw a second reply;
  /// replies for ids not in this set are discarded.
  std::set<std::uint64_t> outstanding_requests_;
  std::map<int, std::unique_ptr<WorkerProcess>> workers_;
  /// Launched but not yet admitted workers (start/init in flight or waiting
  /// for the adjustment to complete).
  std::map<int, std::unique_ptr<WorkerProcess>> joining_;

  bool running_ = false;
  std::uint64_t iteration_ = 0;
  int total_batch_;
  std::uint64_t stop_at_iteration_ = 0;
  bool stop_requested_ = false;
  Seconds ideal_training_time_ = 0;
  std::uint64_t samples_processed_ = 0;
  std::vector<AdjustmentRecord> adjustments_;
  Seconds last_request_time_ = 0;

  /// Straggler factors by worker id (1.0 = healthy). Migrating a straggler
  /// replaces it with a fresh worker on a different device, shedding the
  /// slowdown.
  std::map<int, double> slowdown_;
  /// Fail-stopped workers awaiting removal at the next iteration boundary.
  std::vector<int> pending_failures_;
  int worker_failures_ = 0;
  bool fatal_failure_ = false;
  void process_pending_failures();

  // Coordination round state.
  int decisions_outstanding_ = 0;
  bool adjust_signalled_ = false;
  AdjustmentPlan signalled_plan_;

  void register_loader_hook(WorkerProcess& worker);
  std::unique_ptr<WorkerProcess> make_worker(int id, topo::GpuId gpu, bool already_running);
  void send_adjust_request(AdjustRequestMsg msg);
  void arm_adjust_resend(AdjustRequestMsg msg);
  void on_adjust_reply(const AdjustReplyMsg& reply);
  void attach_master_listener();
  /// Drops joining workers that died mid-launch or were orphaned by an
  /// aborted plan (report-timeout eviction at the AM).
  void reconcile_joining();
  void begin_iteration();
  void train_step();
  void finish_train_step();
  /// Compute time of one worker this iteration (slowdown + jitter applied).
  Seconds worker_compute_time(int worker);
  /// Exposed communication + engine overhead after the compute barrier.
  Seconds post_barrier_time() const;
  int compute_outstanding_ = 0;
  Seconds barrier_reached_at_ = 0;
  void coordinate_round();
  void on_all_decisions();
  void perform_adjustment(const AdjustmentPlan& plan);
  void execute_elan_adjustment(AdjustmentRecord record, const AdjustmentPlan& plan);
  void execute_snr_adjustment(AdjustmentRecord record, const AdjustmentPlan& plan);
  /// Live state of one chunk-pipelined replication (job.cpp): the canonical
  /// serialized stream (allocated once), per-destination receive buffers and
  /// verified-prefix counters, and the running ReplicationStats.
  struct ReplicationSession;
  /// Schedules one round's chunk-arrival events against the simulator.
  void schedule_chunk_round(const std::shared_ptr<ReplicationSession>& session,
                            const ChunkSchedule& schedule);
  /// One chunk landed: verify it against the source bytes (quick fingerprint
  /// on the hot path, full FNV under sanitize/debug builds) and extend the
  /// destination's verified prefix — or mark the destination for resume if
  /// the source died mid-stream.
  void apply_replication_chunk(const std::shared_ptr<ReplicationSession>& session,
                               const ChunkTransfer& transfer, Seconds round_base);
  /// Replication round completion: destinations with a full verified stream
  /// are checksummed (one full FNV against the canonical stream) and loaded;
  /// destinations that lost their source mid-stream get the missing *suffix*
  /// re-planned from survivors — including fully replicated joiners — and the
  /// adjustment extends by the resume round's makespan (recursing until a
  /// round survives its own window).
  void complete_elan_replication(AdjustmentRecord record, AdjustmentPlan plan,
                                 ScalingDecision decision,
                                 std::shared_ptr<ReplicationSession> session);
  void finish_adjustment(AdjustmentRecord record, const AdjustmentPlan& plan,
                         double batch_factor, int new_total_batch);
  std::uint64_t gradient_seed(const data::SampleRange& range) const;
  /// One iteration's data assignment: the shared gradient seed and each
  /// worker's shard (rank order). Handles epoch turnover for the active
  /// semantics.
  struct IterationData {
    std::uint64_t seed = 0;
    std::uint64_t consumed = 0;
    std::vector<data::SampleRange> shards;
  };
  IterationData consume_iteration_data();
  Seconds repartition_cost() const;

  // GPU-memory accounting (active only when memory_pool_ != nullptr).
  memory::MemoryPool* memory_pool_ = nullptr;
  struct WorkerAllocations {
    memory::AllocationId state = 0;
    memory::AllocationId workspace = 0;
    topo::GpuId gpu = -1;
  };
  std::map<int, WorkerAllocations> allocations_;
  int allocated_batch_ = 0;  // per-worker batch the workspaces are sized for
  void allocate_worker_memory(int worker, topo::GpuId gpu);
  void free_worker_memory(int worker);
  void resize_workspaces();
  int per_worker_batch() const { return (total_batch_ + num_workers() - 1) / num_workers(); }
  std::string checkpoint_path() const { return "/ckpt/" + config_.job_id; }
};

}  // namespace elan
