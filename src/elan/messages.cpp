#include "elan/messages.h"

namespace elan {

const char* to_string(AdjustmentType type) {
  switch (type) {
    case AdjustmentType::kScaleOut: return "scale-out";
    case AdjustmentType::kScaleIn: return "scale-in";
    case AdjustmentType::kMigrate: return "migrate";
  }
  return "?";
}

std::vector<std::uint8_t> AdjustmentPlan::serialize() const {
  BinaryWriter w;
  w.write(version);
  w.write(static_cast<std::uint8_t>(type));
  w.write<std::uint64_t>(join.size());
  for (const auto& [id, gpu] : join) {
    w.write(id);
    w.write(gpu);
  }
  w.write<std::uint64_t>(leave.size());
  for (int id : leave) w.write(id);
  return w.take();
}

AdjustmentPlan AdjustmentPlan::deserialize(BinaryReader& r) {
  AdjustmentPlan p;
  p.version = r.read<std::uint64_t>();
  p.type = static_cast<AdjustmentType>(r.read<std::uint8_t>());
  const auto nj = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < nj; ++i) {
    const int id = r.read<int>();
    const auto gpu = r.read<topo::GpuId>();
    p.join.emplace(id, gpu);
  }
  const auto nl = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < nl; ++i) p.leave.push_back(r.read<int>());
  return p;
}

std::vector<std::uint8_t> ReportMsg::serialize() const {
  BinaryWriter w;
  w.write(worker);
  w.write(gpu);
  return w.take();
}

ReportMsg ReportMsg::deserialize(std::span<const std::uint8_t> data) {
  BinaryReader r(data);
  ReportMsg m;
  m.worker = r.read<int>();
  m.gpu = r.read<topo::GpuId>();
  return m;
}

std::vector<std::uint8_t> CoordinateMsg::serialize() const {
  BinaryWriter w;
  w.write(worker);
  w.write(iteration);
  return w.take();
}

CoordinateMsg CoordinateMsg::deserialize(std::span<const std::uint8_t> data) {
  BinaryReader r(data);
  CoordinateMsg m;
  m.worker = r.read<int>();
  m.iteration = r.read<std::uint64_t>();
  return m;
}

std::vector<std::uint8_t> DecisionMsg::serialize() const {
  BinaryWriter w;
  w.write(adjust);
  w.write(iteration);
  const auto plan_bytes = plan.serialize();
  w.write_bytes(plan_bytes);
  return w.take();
}

DecisionMsg DecisionMsg::deserialize(std::span<const std::uint8_t> data) {
  BinaryReader r(data);
  DecisionMsg m;
  m.adjust = r.read<bool>();
  m.iteration = r.read<std::uint64_t>();
  const auto plan_bytes = r.read_bytes();
  BinaryReader pr(plan_bytes);
  m.plan = AdjustmentPlan::deserialize(pr);
  return m;
}

std::vector<std::uint8_t> AdjustRequestMsg::serialize() const {
  BinaryWriter w;
  w.write(request_id);
  w.write(static_cast<std::uint8_t>(type));
  w.write<std::uint64_t>(gpus.size());
  for (auto g : gpus) w.write(g);
  w.write<std::uint64_t>(victims.size());
  for (int v : victims) w.write(v);
  return w.take();
}

AdjustRequestMsg AdjustRequestMsg::deserialize(std::span<const std::uint8_t> data) {
  BinaryReader r(data);
  AdjustRequestMsg m;
  m.request_id = r.read<std::uint64_t>();
  m.type = static_cast<AdjustmentType>(r.read<std::uint8_t>());
  const auto ng = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < ng; ++i) m.gpus.push_back(r.read<topo::GpuId>());
  const auto nv = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < nv; ++i) m.victims.push_back(r.read<int>());
  return m;
}

std::vector<std::uint8_t> AdjustReplyMsg::serialize() const {
  BinaryWriter w;
  w.write(request_id);
  w.write(ok);
  w.write_string(error);
  w.write<std::uint64_t>(launch.size());
  for (const auto& [id, gpu] : launch) {
    w.write(id);
    w.write(gpu);
  }
  return w.take();
}

AdjustReplyMsg AdjustReplyMsg::deserialize(std::span<const std::uint8_t> data) {
  BinaryReader r(data);
  AdjustReplyMsg m;
  m.request_id = r.read<std::uint64_t>();
  m.ok = r.read<bool>();
  m.error = r.read_string();
  const auto n = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < n; ++i) {
    const int id = r.read<int>();
    const auto gpu = r.read<topo::GpuId>();
    m.launch.emplace_back(id, gpu);
  }
  return m;
}

std::vector<std::uint8_t> AdjustCompleteMsg::serialize() const {
  BinaryWriter w;
  w.write(plan_version);
  w.write<std::uint64_t>(failed_joins.size());
  for (int id : failed_joins) w.write(id);
  return w.take();
}

AdjustCompleteMsg AdjustCompleteMsg::deserialize(std::span<const std::uint8_t> data) {
  BinaryReader r(data);
  AdjustCompleteMsg m;
  m.plan_version = r.read<std::uint64_t>();
  const auto n = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < n; ++i) m.failed_joins.push_back(r.read<int>());
  return m;
}

std::vector<std::uint8_t> RemoveFailedMsg::serialize() const {
  BinaryWriter w;
  w.write(worker);
  return w.take();
}

RemoveFailedMsg RemoveFailedMsg::deserialize(std::span<const std::uint8_t> data) {
  BinaryReader r(data);
  RemoveFailedMsg m;
  m.worker = r.read<int>();
  return m;
}

std::vector<std::uint8_t> StatusRequestMsg::serialize() const {
  BinaryWriter w;
  w.write(request_id);
  return w.take();
}

StatusRequestMsg StatusRequestMsg::deserialize(std::span<const std::uint8_t> data) {
  BinaryReader r(data);
  StatusRequestMsg m;
  m.request_id = r.read<std::uint64_t>();
  return m;
}

std::vector<std::uint8_t> StatusReplyMsg::serialize() const {
  BinaryWriter w;
  w.write(request_id);
  w.write(phase);
  w.write(plan_version);
  w.write<std::uint64_t>(workers.size());
  for (const auto& [id, gpu] : workers) {
    w.write(id);
    w.write(gpu);
  }
  w.write(evictions);
  w.write(coordinations);
  w.write(reports);
  return w.take();
}

StatusReplyMsg StatusReplyMsg::deserialize(std::span<const std::uint8_t> data) {
  BinaryReader r(data);
  StatusReplyMsg m;
  m.request_id = r.read<std::uint64_t>();
  m.phase = r.read<std::uint8_t>();
  m.plan_version = r.read<std::uint64_t>();
  const auto n = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < n; ++i) {
    const int id = r.read<int>();
    const auto gpu = r.read<topo::GpuId>();
    m.workers.emplace(id, gpu);
  }
  m.evictions = r.read<std::uint64_t>();
  m.coordinations = r.read<std::uint64_t>();
  m.reports = r.read<std::uint64_t>();
  return m;
}

}  // namespace elan
