#include "elan/hooks.h"

#include <algorithm>

#include "common/error.h"
#include "common/serialize.h"

namespace elan {

const char* to_string(StateLocation location) {
  switch (location) {
    case StateLocation::kGpu: return "GPU";
    case StateLocation::kCpu: return "CPU";
  }
  return "?";
}

Bytes StateSnapshot::stored_bytes() const {
  Bytes total = 0;
  for (const auto& [name, blob] : blobs) total += blob.size();
  return total;
}

std::uint64_t StateSnapshot::checksum() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& [name, blob] : blobs) {
    h = h * 31 + fnv1a({reinterpret_cast<const std::uint8_t*>(name.data()), name.size()});
    h = h * 31 + blob.checksum();
  }
  return h;
}

std::vector<std::uint8_t> StateSnapshot::serialize() const {
  BinaryWriter w;
  w.write<std::uint64_t>(blobs.size());
  for (const auto& [name, blob] : blobs) {
    w.write_string(name);
    w.write_bytes(blob.bytes());
  }
  w.write<Bytes>(nominal_gpu_bytes);
  w.write<Bytes>(nominal_cpu_bytes);
  return w.take();
}

StateSnapshot StateSnapshot::deserialize(std::span<const std::uint8_t> data) {
  BinaryReader r(data);
  StateSnapshot s;
  const auto n = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.read_string();
    auto bytes = r.read_bytes();
    s.blobs.emplace(name, Blob(name, std::move(bytes)));
  }
  s.nominal_gpu_bytes = r.read<Bytes>();
  s.nominal_cpu_bytes = r.read<Bytes>();
  return s;
}

void HookRegistry::register_hook(StateHook hook) {
  require(!hook.name.empty(), "register_hook: empty name");
  require(static_cast<bool>(hook.save) && static_cast<bool>(hook.load),
          "register_hook: save/load must both be set for " + hook.name);
  require(!has_hook(hook.name), "register_hook: duplicate hook " + hook.name);
  hooks_.push_back(std::move(hook));
}

bool HookRegistry::has_hook(const std::string& name) const {
  return std::any_of(hooks_.begin(), hooks_.end(),
                     [&](const StateHook& h) { return h.name == name; });
}

Bytes HookRegistry::nominal_bytes(StateLocation location) const {
  Bytes total = 0;
  for (const auto& h : hooks_) {
    if (h.location == location) total += h.nominal_bytes;
  }
  return total;
}

StateSnapshot HookRegistry::save_all() const {
  StateSnapshot s;
  for (const auto& h : hooks_) {
    s.blobs.emplace(h.name, h.save());
    if (h.location == StateLocation::kGpu) {
      s.nominal_gpu_bytes += h.nominal_bytes;
    } else {
      s.nominal_cpu_bytes += h.nominal_bytes;
    }
  }
  return s;
}

void HookRegistry::load_all(const StateSnapshot& snapshot) const {
  for (const auto& h : hooks_) {
    auto it = snapshot.blobs.find(h.name);
    if (it == snapshot.blobs.end()) throw NotFound("snapshot blob: " + h.name);
    h.load(it->second);
  }
}

std::vector<std::string> HookRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(hooks_.size());
  for (const auto& h : hooks_) out.push_back(h.name);
  return out;
}

std::vector<HookRegistry::InventoryRow> HookRegistry::inventory() const {
  std::vector<InventoryRow> rows;
  rows.reserve(hooks_.size());
  for (const auto& h : hooks_) rows.push_back({h.name, h.location, h.nominal_bytes});
  return rows;
}

}  // namespace elan
