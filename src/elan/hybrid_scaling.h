// Hybrid scaling mechanism (paper §III, Algorithm 1).
//
// On a resource adjustment from N to N' workers, decide the new total batch
// size: try strong scaling first (keep TBS); if the post-adjustment worker
// count exceeds the optimal worker count for that TBS (resources would be
// under-utilised), weakly scale the batch by doubling until the optimum
// covers N'; if all trials fail, scale the batch proportionally to the
// resource change. The learning rate scales with the chosen batch factor and
// is ramped by the progressive linear scaling rule (LrController).
#pragma once

#include <cstdint>

#include "train/models.h"
#include "train/throughput.h"

namespace elan {

struct ScalingDecision {
  int total_batch = 0;    // TBS'
  double batch_factor = 1.0;  // k = TBS'/TBS; also the LR scaling factor
  bool weak_scaled = false;   // true iff the batch size changed
  /// N_opt for the chosen TBS' (diagnostic; 0 when the proportional fallback
  /// was taken).
  int optimal_workers = 0;
};

struct HybridScalingParams {
  /// Iterations over which the LR ramp completes (T in Eq. 3). The paper's
  /// ResNet-50 experiment uses 100.
  std::uint64_t ramp_iterations = 100;
  /// Upper bound on the weak-scaling factor per adjustment; guards against
  /// pathological N'/N ratios.
  double max_factor = 64.0;
};

class HybridScaling {
 public:
  HybridScaling(const train::ThroughputModel& throughput, const train::ModelSpec& model,
                HybridScalingParams params = {});

  const HybridScalingParams& params() const { return params_; }

  /// GETTOTALBATCHSIZE (Algorithm 1): the new total batch size when adjusting
  /// from `workers_before` (with `total_batch_before`) to `workers_after`.
  ///
  /// Scaling in (or no change) keeps the batch unless it no longer fits in
  /// GPU memory, in which case the batch shrinks to the largest fitting
  /// power-of-two multiple.
  ScalingDecision decide(int workers_before, int total_batch_before, int workers_after) const;

 private:
  const train::ThroughputModel* throughput_;
  train::ModelSpec model_;
  HybridScalingParams params_;
};

}  // namespace elan
