// Hook API — the framework-integration surface (paper §V-A, Table III).
//
// All training state that must survive a resource adjustment is encapsulated
// in hooks registered via RegisterHook. Integrating Elan with a new framework
// means implementing save/load functions for each piece of state; the rest of
// the system (replication planner, checkpointing baseline, consistency
// checks) works purely against this interface.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/blob.h"
#include "common/units.h"

namespace elan {

/// Where a piece of state physically resides (paper Table II: model and
/// optimizer states live in GPU memory; data-loader and runtime states live
/// in CPU memory).
enum class StateLocation { kGpu, kCpu };

const char* to_string(StateLocation location);

struct StateHook {
  std::string name;
  StateLocation location = StateLocation::kCpu;
  /// Nominal size of this state in a real deployment (used for all transfer
  /// timing); the blob returned by `save` may be smaller (scaled simulation
  /// storage).
  Bytes nominal_bytes = 0;
  std::function<Blob()> save;
  std::function<void(const Blob&)> load;
};

/// A saved set of states, keyed by hook name.
struct StateSnapshot {
  std::map<std::string, Blob> blobs;
  Bytes nominal_gpu_bytes = 0;
  Bytes nominal_cpu_bytes = 0;

  Bytes nominal_total_bytes() const { return nominal_gpu_bytes + nominal_cpu_bytes; }
  /// Actual stored bytes (scaled), for serialisation cost in tests.
  Bytes stored_bytes() const;
  std::uint64_t checksum() const;

  std::vector<std::uint8_t> serialize() const;
  static StateSnapshot deserialize(std::span<const std::uint8_t> data);
};

/// Registry of all state hooks of one worker (RegisterHook in Table III).
class HookRegistry {
 public:
  void register_hook(StateHook hook);
  bool has_hook(const std::string& name) const;
  std::size_t size() const { return hooks_.size(); }

  /// Nominal byte totals by location — drives replication-time accounting.
  Bytes nominal_bytes(StateLocation location) const;

  StateSnapshot save_all() const;
  void load_all(const StateSnapshot& snapshot) const;

  /// Names in registration order (deterministic iteration for tests).
  std::vector<std::string> names() const;

  /// Table II-style inventory row per hook: (name, location, nominal bytes).
  struct InventoryRow {
    std::string name;
    StateLocation location;
    Bytes nominal_bytes;
  };
  std::vector<InventoryRow> inventory() const;

 private:
  std::vector<StateHook> hooks_;
};

}  // namespace elan
