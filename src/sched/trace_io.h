// CSV import/export for scheduling traces and metrics.
//
// Lets users persist generated traces (for reproducible comparisons across
// policies/systems), bring their own production traces, and post-process
// simulation results with external tooling.
//
// Trace CSV columns:
//   id,submit_time,model,req_res,min_res,max_res,base_total_batch,total_samples
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sched/job.h"
#include "sched/metrics.h"

namespace elan::sched {

void write_trace_csv(std::ostream& os, const std::vector<SchedJobSpec>& trace);
std::vector<SchedJobSpec> read_trace_csv(std::istream& is);

/// Per-sample utilisation timeline: time_seconds,utilization.
void write_utilization_csv(std::ostream& os, const std::vector<UtilizationSample>& samples);

}  // namespace elan::sched
