#include "sched/trace.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace elan::sched {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Request sizes weighted towards small jobs, as in production DL clusters.
int sample_req_res(Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.30) return 1;
  if (u < 0.50) return 2;
  if (u < 0.70) return 4;
  if (u < 0.85) return 8;
  if (u < 0.95) return 16;
  return 32;
}

}  // namespace

TraceParams production_trace_params(int target_jobs, std::uint64_t seed) {
  require(target_jobs > 0, "trace: target_jobs must be positive");
  TraceParams params;
  params.seed = seed;
  const double mean_jobs = (params.peak_jobs_per_hour + params.trough_jobs_per_hour) /
                           2.0 * (params.span / 3600.0);
  params.load = static_cast<double>(target_jobs) / mean_jobs;
  return params;
}

TraceGenerator::TraceGenerator(const train::ThroughputModel& throughput, TraceParams params)
    : throughput_(&throughput), params_(params) {
  require(params_.span > 0, "trace: span must be positive");
  require(params_.trough_jobs_per_hour > 0, "trace: trough rate must be positive");
  require(params_.load > 0, "trace: load must be positive");
}

SchedJobSpec TraceGenerator::make_job(int id, Seconds submit, Rng& rng) const {
  SchedJobSpec job;
  job.id = id;
  job.submit_time = submit;

  const auto zoo = train::model_zoo();
  job.model = zoo[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(zoo.size()) - 1))];

  job.req_res = sample_req_res(rng);
  job.base_total_batch = params_.per_worker_batch * job.req_res;

  // min_res: smallest worker count whose per-worker batch fits in GPU memory
  // (the paper: "the model can fit in GPU memory with min_res workers").
  int min_res = std::max(1, job.req_res / 4);
  while (min_res < job.req_res &&
         !throughput_->fits(job.model, min_res, job.base_total_batch)) {
    ++min_res;
  }
  job.min_res = min_res;

  // max_res: enough room to weak-scale a couple of times but bounded so the
  // batch stays in convergence-safe territory ("converge with max_res").
  job.max_res = std::min({job.req_res * 4, throughput_->topology().total_gpus() / 2});
  job.max_res = std::max(job.max_res, job.req_res);

  const double duration = std::min(
      params_.duration_cap,
      params_.duration_median * std::exp(rng.normal(0.0, params_.duration_sigma)));
  const double tput =
      throughput_->throughput(job.model, job.req_res, job.base_total_batch);
  job.total_samples = static_cast<std::uint64_t>(std::max(1.0, duration * tput));
  return job;
}

std::vector<SchedJobSpec> TraceGenerator::generate() const {
  Rng rng(params_.seed);
  std::vector<SchedJobSpec> jobs;
  // `load` scales both rates; the default 1.0 multiplies exactly, keeping
  // historical seeds bit-stable.
  const double mean_rate = (params_.peak_jobs_per_hour + params_.trough_jobs_per_hour) /
                           2.0 / 3600.0 * params_.load;
  const double amplitude = (params_.peak_jobs_per_hour - params_.trough_jobs_per_hour) /
                           2.0 / 3600.0 * params_.load;
  const double peak_rate = mean_rate + amplitude;

  // Thinned Poisson process: candidates at the peak rate, accepted with
  // probability rate(t)/peak_rate. Peak activity at 15:00 each day.
  Seconds t = 0;
  int id = 0;
  while (true) {
    t += rng.exponential(peak_rate);
    if (t >= params_.span) break;
    const double day_phase = 2.0 * kPi * (t / hours(24.0) - 15.0 / 24.0);
    const double rate = mean_rate + amplitude * std::cos(day_phase);
    if (!rng.chance(rate / peak_rate)) continue;
    jobs.push_back(make_job(id++, t, rng));
  }
  return jobs;
}

}  // namespace elan::sched
