#include "sched/trace_io.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace elan::sched {

namespace {

constexpr const char* kHeader =
    "id,submit_time,model,req_res,min_res,max_res,base_total_batch,total_samples";

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

}  // namespace

void write_trace_csv(std::ostream& os, const std::vector<SchedJobSpec>& trace) {
  os.precision(17);  // round-trip doubles exactly
  os << kHeader << "\n";
  for (const auto& j : trace) {
    os << j.id << ',' << j.submit_time << ',' << j.model.name << ',' << j.req_res << ','
       << j.min_res << ',' << j.max_res << ',' << j.base_total_batch << ','
       << j.total_samples << "\n";
  }
}

std::vector<SchedJobSpec> read_trace_csv(std::istream& is) {
  std::string line;
  require(static_cast<bool>(std::getline(is, line)), "trace csv: empty input");
  require(line == kHeader, "trace csv: unexpected header: " + line);
  std::vector<SchedJobSpec> trace;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    require(cells.size() == 8, "trace csv: bad row: " + line);
    SchedJobSpec j;
    j.id = std::stoi(cells[0]);
    j.submit_time = std::stod(cells[1]);
    j.model = train::model_by_name(cells[2]);
    j.req_res = std::stoi(cells[3]);
    j.min_res = std::stoi(cells[4]);
    j.max_res = std::stoi(cells[5]);
    j.base_total_batch = std::stoi(cells[6]);
    j.total_samples = std::stoull(cells[7]);
    require(j.min_res > 0 && j.min_res <= j.req_res && j.req_res <= j.max_res,
            "trace csv: inconsistent resource bounds in row: " + line);
    trace.push_back(std::move(j));
  }
  return trace;
}

void write_utilization_csv(std::ostream& os,
                           const std::vector<UtilizationSample>& samples) {
  os.precision(17);
  os << "time_seconds,utilization\n";
  for (const auto& s : samples) os << s.time << ',' << s.utilization << "\n";
}

}  // namespace elan::sched
