// Scheduling metrics (paper Figs 20-22).
#pragma once

#include <vector>

#include "common/stats.h"
#include "common/units.h"

namespace elan::sched {

struct UtilizationSample {
  Seconds time = 0;
  double utilization = 0;  // allocated GPUs / total GPUs
};

struct ScheduleMetrics {
  Stats pending_time;     // JPT per job
  Stats completion_time;  // JCT per job
  Seconds makespan = 0;   // last finish - first submit
  std::vector<UtilizationSample> utilization;
  int total_adjustments = 0;
  int jobs_finished = 0;

  double average_utilization() const;
};

}  // namespace elan::sched
