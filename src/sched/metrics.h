// Scheduling metrics (paper Figs 20-22).
#pragma once

#include <vector>

#include "common/stats.h"
#include "common/units.h"

namespace elan::sched {

struct UtilizationSample {
  Seconds time = 0;
  double utilization = 0;  // allocated GPUs / total GPUs
};

struct ScheduleMetrics {
  Stats pending_time;     // JPT per job
  Stats completion_time;  // JCT per job
  Seconds makespan = 0;   // last finish - first submit
  std::vector<UtilizationSample> utilization;
  int total_adjustments = 0;
  int jobs_finished = 0;

  double average_utilization() const;

  /// Tail quantiles of per-job pending time / JCT, q in [0, 1]. Mean-only
  /// columns hide the tail effects the multi-tenant schedulers report, so
  /// the fig20 / ablation tables surface p50 and p99. Computed through
  /// obs::Histogram::Snapshot::quantile (Prometheus bucket-interpolation
  /// semantics) over sqrt(2)-spaced bounds — the same estimator the live
  /// observability stack reports, so offline tables and scraped dashboards
  /// agree. NaN when no job finished or q is outside [0, 1].
  double pending_time_quantile(double q) const;
  double completion_time_quantile(double q) const;
};

}  // namespace elan::sched
