// Live elastic scheduler.
//
// ClusterSim (cluster.h) is the paper's *discrete-time* scheduling simulator:
// it prices adjustments analytically to evaluate policies over two-day
// traces. LiveScheduler is the complementary end-to-end integration: it
// manages real ElasticJob instances — real application masters, worker
// processes, coordination messages, state replication — on one shared
// discrete-event cluster, driving them through the Table III service API
// exactly the way a production scheduler would (paper Fig 2, step 1).
//
// Policy (a live rendition of the paper's §VI-C elastic policy):
//   * admission — a submitted job starts once min_workers GPUs are free;
//   * allocation — at every rebalance tick, greedily hand spare GPUs to the
//     job with the highest marginal gain (estimated remaining-time drop per
//     added worker), and reclaim GPUs from jobs whose marginal loss is
//     smallest when pending jobs need them;
//   * placement — GPUs are allocated most-compact-node-first so replication
//     and allreduce stay on fast links.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "elan/job.h"
#include "sched/metrics.h"
#include "storage/filesystem.h"

namespace elan::sched {

struct LiveJobSpec {
  std::string job_id;
  train::ModelSpec model;
  int min_workers = 1;
  int max_workers = 8;
  /// Per-worker batch the job was tuned for (TBS follows hybrid scaling).
  int per_worker_batch = 32;
  /// Work: the job finishes after this many samples.
  std::uint64_t target_samples = 0;
};

struct LiveSchedulerParams {
  Seconds rebalance_interval = 30.0;
  std::uint64_t coordination_interval = 1;
};

struct LiveJobStats {
  std::string job_id;
  Seconds submitted_at = -1;
  Seconds started_at = -1;
  Seconds finished_at = -1;
  int adjustments = 0;
  Seconds pending_time() const { return started_at - submitted_at; }
  Seconds completion_time() const { return finished_at - submitted_at; }
};

class LiveScheduler {
 public:
  LiveScheduler(sim::Simulator& simulator, const topo::Topology& topology,
                const topo::BandwidthModel& bandwidth, storage::SimFilesystem& filesystem,
                transport::MessageBus& bus, transport::KvStore& kv,
                LiveSchedulerParams params = {});

  /// Submits a job (queues it; admission happens on the next tick).
  void submit(LiveJobSpec spec);

  /// Starts the periodic scheduling loop.
  void start();

  // --- Introspection --------------------------------------------------------
  int free_gpus() const { return static_cast<int>(free_.size()); }
  int running_jobs() const { return static_cast<int>(running_.size()); }
  int pending_jobs() const { return static_cast<int>(queue_.size()); }
  bool all_done() const { return queue_.empty() && running_.empty(); }

  const std::vector<LiveJobStats>& finished() const { return finished_; }
  const std::vector<UtilizationSample>& utilization() const { return utilization_; }
  const ElasticJob* job(const std::string& job_id) const;

 private:
  struct RunningJob {
    LiveJobSpec spec;
    std::unique_ptr<ElasticJob> job;
    LiveJobStats stats;
  };

  sim::Simulator& sim_;
  const topo::Topology& topology_;
  const topo::BandwidthModel& bandwidth_;
  storage::SimFilesystem& fs_;
  transport::MessageBus& bus_;
  transport::KvStore& kv_;
  LiveSchedulerParams params_;
  train::ThroughputModel throughput_;
  /// Shared device-memory pool: placement conflicts across jobs become hard
  /// OutOfMemory errors instead of silent oversubscription.
  memory::MemoryPool memory_pool_;

  std::set<topo::GpuId> free_;
  std::deque<std::pair<LiveJobSpec, Seconds>> queue_;  // spec + submit time
  std::map<std::string, RunningJob> running_;
  std::vector<LiveJobStats> finished_;
  std::vector<UtilizationSample> utilization_;
  bool started_ = false;

  void tick();
  void try_admit();
  void rebalance();
  void finish_job(const std::string& job_id);
  /// Picks `n` free GPUs, most-compact node first; removes them from free_.
  std::vector<topo::GpuId> allocate_gpus(int n);
  /// Chooses scale-in victims: workers on the job's least-populated nodes.
  std::vector<int> pick_victims(const ElasticJob& job, int count) const;
  double marginal_gain(const RunningJob& rj, int extra) const;
  std::uint64_t remaining_samples(const RunningJob& rj) const;
  bool gpu_in_use(topo::GpuId gpu) const;
};

}  // namespace elan::sched
