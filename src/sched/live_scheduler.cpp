#include "sched/live_scheduler.h"

#include <algorithm>

#include "common/error.h"
#include "common/log.h"
#include "elan/hybrid_scaling.h"

namespace elan::sched {

LiveScheduler::LiveScheduler(sim::Simulator& simulator, const topo::Topology& topology,
                             const topo::BandwidthModel& bandwidth,
                             storage::SimFilesystem& filesystem, transport::MessageBus& bus,
                             transport::KvStore& kv, LiveSchedulerParams params)
    : sim_(simulator),
      topology_(topology),
      bandwidth_(bandwidth),
      fs_(filesystem),
      bus_(bus),
      kv_(kv),
      params_(params),
      throughput_(topology, bandwidth),
      memory_pool_(topology) {
  for (topo::GpuId g = 0; g < topology_.total_gpus(); ++g) free_.insert(g);
}

bool LiveScheduler::gpu_in_use(topo::GpuId gpu) const {
  if (free_.count(gpu) > 0) return true;  // "in use" by the free pool
  for (const auto& [id, rj] : running_) {
    for (int w : rj.job->worker_ids()) {
      if (rj.job->worker(w).gpu() == gpu) return true;
    }
  }
  return false;
}

void LiveScheduler::submit(LiveJobSpec spec) {
  require(!spec.job_id.empty(), "live: job needs an id");
  require(spec.min_workers > 0 && spec.min_workers <= spec.max_workers,
          "live: bad worker bounds");
  require(spec.min_workers <= topology_.total_gpus(), "live: job larger than cluster");
  require(spec.target_samples > 0, "live: job needs work");
  queue_.emplace_back(std::move(spec), sim_.now());
  if (started_) sim_.schedule(0.0, [this] { tick(); });
}

void LiveScheduler::start() {
  require(!started_, "live: already started");
  started_ = true;
  tick();
}

const ElasticJob* LiveScheduler::job(const std::string& job_id) const {
  auto it = running_.find(job_id);
  return it == running_.end() ? nullptr : it->second.job.get();
}

std::vector<topo::GpuId> LiveScheduler::allocate_gpus(int n) {
  ELAN_CHECK(static_cast<int>(free_.size()) >= n, "live: not enough free GPUs");
  // Group free GPUs by node; take from the fullest nodes first so jobs stay
  // compact (fast replication/allreduce links).
  std::map<int, std::vector<topo::GpuId>> by_node;
  for (auto g : free_) by_node[topology_.node_of(g)].push_back(g);
  std::vector<std::pair<int, std::vector<topo::GpuId>>> nodes(by_node.begin(), by_node.end());
  std::sort(nodes.begin(), nodes.end(), [](const auto& a, const auto& b) {
    if (a.second.size() != b.second.size()) return a.second.size() > b.second.size();
    return a.first < b.first;
  });
  std::vector<topo::GpuId> out;
  for (const auto& [node, gpus] : nodes) {
    for (auto g : gpus) {
      if (static_cast<int>(out.size()) == n) break;
      out.push_back(g);
      free_.erase(g);
    }
    if (static_cast<int>(out.size()) == n) break;
  }
  return out;
}

std::vector<int> LiveScheduler::pick_victims(const ElasticJob& job, int count) const {
  // Prefer removing workers from the job's least-populated nodes: the
  // survivors stay compact and whole nodes free up for other jobs.
  std::map<int, std::vector<int>> by_node;  // node -> worker ids
  for (int id : job.worker_ids()) {
    by_node[topology_.node_of(job.worker(id).gpu())].push_back(id);
  }
  std::vector<std::pair<int, std::vector<int>>> nodes(by_node.begin(), by_node.end());
  std::sort(nodes.begin(), nodes.end(), [](const auto& a, const auto& b) {
    if (a.second.size() != b.second.size()) return a.second.size() < b.second.size();
    return a.first < b.first;
  });
  std::vector<int> victims;
  for (const auto& [node, ids] : nodes) {
    for (int id : ids) {
      if (static_cast<int>(victims.size()) == count) return victims;
      victims.push_back(id);
    }
  }
  return victims;
}

std::uint64_t LiveScheduler::remaining_samples(const RunningJob& rj) const {
  const auto processed = rj.job->samples_processed();
  return processed >= rj.spec.target_samples ? 0 : rj.spec.target_samples - processed;
}

double LiveScheduler::marginal_gain(const RunningJob& rj, int extra) const {
  const int cur = rj.job->num_workers();
  const int next = cur + extra;
  if (next < rj.spec.min_workers || next > rj.spec.max_workers) return -1.0;
  const HybridScaling hybrid(throughput_, rj.spec.model);
  const auto cur_tbs = rj.job->total_batch();
  const auto next_tbs = hybrid.decide(cur, cur_tbs, next).total_batch;
  const double rem = static_cast<double>(remaining_samples(rj));
  const double t_cur = rem / throughput_.throughput(rj.spec.model, cur, cur_tbs);
  const double t_next = rem / throughput_.throughput(rj.spec.model, next, next_tbs);
  return t_cur - t_next;  // positive when adding helps, negative when removing hurts
}

void LiveScheduler::try_admit() {
  while (!queue_.empty()) {
    auto& [spec, submitted] = queue_.front();
    if (static_cast<int>(free_.size()) < spec.min_workers) break;

    RunningJob rj;
    rj.spec = spec;
    rj.stats.job_id = spec.job_id;
    rj.stats.submitted_at = submitted;
    rj.stats.started_at = sim_.now();

    JobConfig cfg;
    cfg.job_id = spec.job_id;
    cfg.model = spec.model;
    cfg.initial_workers = spec.min_workers;
    cfg.initial_gpus = allocate_gpus(spec.min_workers);
    cfg.initial_total_batch = spec.per_worker_batch * spec.min_workers;
    cfg.base_lr = 0.1 * cfg.initial_total_batch / 256.0;
    cfg.coordination_interval = params_.coordination_interval;
    auto job = std::make_unique<ElasticJob>(sim_, topology_, bandwidth_, fs_, bus_, kv_,
                                            std::move(cfg), &memory_pool_);
    const std::string id = spec.job_id;
    job->on_iteration = [this, id](std::uint64_t) {
      auto it = running_.find(id);
      if (it != running_.end() && remaining_samples(it->second) == 0) {
        it->second.job->stop();
      }
    };
    job->on_stopped = [this, id] {
      // Defer: on_stopped fires inside the job's own call stack.
      sim_.schedule(0.0, [this, id] { finish_job(id); });
    };
    job->stop_after_iterations(~0ULL >> 1);
    job->start();
    rj.job = std::move(job);
    log_info() << "live: admitted " << id << " with " << spec.min_workers << " workers";
    running_.emplace(id, std::move(rj));
    queue_.pop_front();
  }
}

void LiveScheduler::finish_job(const std::string& job_id) {
  auto it = running_.find(job_id);
  if (it == running_.end()) return;
  auto& rj = it->second;
  rj.stats.finished_at = sim_.now();
  rj.stats.adjustments = static_cast<int>(rj.job->adjustments().size());
  for (int id : rj.job->worker_ids()) free_.insert(rj.job->worker(id).gpu());
  finished_.push_back(rj.stats);
  log_info() << "live: finished " << job_id;
  running_.erase(it);
  sim_.schedule(0.0, [this] { tick(); });
}

void LiveScheduler::rebalance() {
  // Grow: hand spare GPUs to the job with the best marginal gain, one
  // adjustment per job per tick (the AM serialises adjustments anyway).
  bool progress = true;
  while (progress && !free_.empty()) {
    progress = false;
    RunningJob* best = nullptr;
    double best_gain = 0.0;
    for (auto& [id, rj] : running_) {
      if (rj.job->adjustment_pending()) continue;  // adjustment already in flight
      const double gain = marginal_gain(rj, +1);
      if (gain > best_gain) {
        best_gain = gain;
        best = &rj;
      }
    }
    if (best == nullptr) break;
    // Give as many GPUs as keep paying off, up to the spare pool.
    int grant = 0;
    while (grant < static_cast<int>(free_.size()) &&
           best->job->num_workers() + grant < best->spec.max_workers &&
           marginal_gain(*best, grant + 1) > marginal_gain(*best, grant)) {
      ++grant;
    }
    grant = std::max(grant, 1);
    grant = std::min(grant, static_cast<int>(free_.size()));
    grant = std::min(grant, best->spec.max_workers - best->job->num_workers());
    if (grant <= 0) break;
    best->job->request_scale_out(allocate_gpus(grant));
    progress = true;
  }

  // Shrink: when jobs queue, reclaim GPUs from the running job whose
  // marginal loss is smallest, down to its min_workers.
  if (!queue_.empty()) {
    const int needed = queue_.front().first.min_workers - static_cast<int>(free_.size());
    if (needed > 0) {
      RunningJob* cheapest = nullptr;
      double cheapest_loss = 0.0;
      for (auto& [id, rj] : running_) {
        if (rj.job->adjustment_pending()) continue;
        const int removable = rj.job->num_workers() - rj.spec.min_workers;
        if (removable < needed) continue;
        const double loss = -marginal_gain(rj, -needed);
        if (cheapest == nullptr || loss < cheapest_loss) {
          cheapest = &rj;
          cheapest_loss = loss;
        }
      }
      if (cheapest != nullptr) {
        const auto victims = pick_victims(*cheapest->job, needed);
        // The freed GPUs come back when the adjustment completes; reclaim
        // them lazily on the next tick after the workers are gone.
        const std::string id = cheapest->spec.job_id;
        cheapest->job->request_scale_in(victims);
        std::vector<topo::GpuId> gpus;
        for (int v : victims) gpus.push_back(cheapest->job->worker(v).gpu());
        // Track released GPUs once the scale-in lands.
        auto poll = std::make_shared<std::function<void()>>();
        *poll = [this, id, gpus, poll] {
          auto jt = running_.find(id);
          const bool victims_gone =
              jt == running_.end() || !jt->second.job->adjustment_pending();
          if (!victims_gone) {
            sim_.schedule(1.0, *poll);
            return;
          }
          // Free the victims' GPUs unless someone already owns them (the job
          // may have finished first, in which case finish_job freed its
          // remaining workers but not these).
          for (auto g : gpus) {
            if (!gpu_in_use(g)) free_.insert(g);
          }
          sim_.schedule(0.0, [this] { tick(); });
        };
        sim_.schedule(1.0, *poll);
      }
    }
  }
}

void LiveScheduler::tick() {
  if (!started_) return;
  try_admit();
  rebalance();

  int busy = 0;
  for (const auto& [id, rj] : running_) busy += rj.job->num_workers();
  utilization_.push_back(
      {sim_.now(), static_cast<double>(busy) / topology_.total_gpus()});

  if (!all_done()) {
    sim_.schedule(params_.rebalance_interval, [this] { tick(); });
  }
}

}  // namespace elan::sched
