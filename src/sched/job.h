// Job model for the cluster-scheduling simulator (paper §VI-C).
#pragma once

#include <cstdint>

#include <vector>

#include "common/units.h"
#include "topology/topology.h"
#include "train/models.h"

namespace elan::sched {

/// A job as it appears in the trace. Static policies allocate exactly
/// `req_res` workers; elastic policies may run it anywhere in
/// [min_res, max_res] (the paper's extension of the trace: min_res keeps the
/// model in GPU memory, max_res keeps it converging).
struct SchedJobSpec {
  int id = 0;
  Seconds submit_time = 0;
  train::ModelSpec model;
  int req_res = 1;
  int min_res = 1;
  int max_res = 1;
  /// Total batch size the job was tuned for at req_res workers.
  int base_total_batch = 32;
  /// Total work (samples to process until completion).
  std::uint64_t total_samples = 0;
};

enum class JobStatus { kPending, kRunning, kFinished };

/// Runtime state tracked by the simulator.
struct SchedJob {
  SchedJobSpec spec;
  JobStatus status = JobStatus::kPending;
  int workers = 0;
  int total_batch = 0;
  /// Actual GPU placement (only tracked in placement-aware mode; empty in
  /// the paper's count-based mode).
  std::vector<topo::GpuId> gpus;
  double remaining_samples = 0;
  Seconds start_time = -1;
  Seconds finish_time = -1;
  /// Adjustment timeline: the job trains at `prev_workers` throughput until
  /// pause_start (new workers starting asynchronously), is fully paused in
  /// [pause_start, paused_until) (replication for Elan; checkpoint +
  /// restart for S&R), and runs at `workers` from paused_until on.
  Seconds pause_start = 0;
  Seconds paused_until = 0;
  int prev_workers = 0;
  int prev_total_batch = 0;
  int adjustments = 0;

  /// Worker count whose throughput applies at time `now`.
  int effective_workers(Seconds now) const {
    return now < paused_until ? prev_workers : workers;
  }
  int effective_batch(Seconds now) const {
    return now < paused_until ? prev_total_batch : total_batch;
  }
  bool paused(Seconds now) const { return now >= pause_start && now < paused_until; }

  Seconds pending_time() const { return start_time - spec.submit_time; }
  Seconds completion_time() const { return finish_time - spec.submit_time; }
};

}  // namespace elan::sched
