// Discrete-time cluster-scheduling simulator (paper §VI-C).
//
// Replays a job trace on a GPU cluster under four policies:
//   FIFO          — start the queue head when req_res GPUs are free.
//   Backfill (BF) — EASY backfilling on top of FIFO: a later job may start
//                   now if it fits and finishes before the head's reserved
//                   start (Slurm's default policy, the paper's second
//                   baseline).
//   E-FIFO / E-BF — the paper's elastic variants: a job may *start* with as
//                   few as min_res workers (admission rule), and a
//                   marginal-gain waterfilling loop reallocates all GPUs
//                   across running jobs (allocation rule), with batch size /
//                   LR following the hybrid scaling mechanism.
//
// The elastic system executing the adjustments (Ideal / Elan / S&R) sets the
// pause each reallocation costs and the runtime overhead — exactly the
// paper's Fig 22 ablation.
//
// Replay is event-driven by default: the clock still advances in exact
// `tick` increments (floating-point sums stay bit-identical to the fixed-tick
// loop), but ticks where nothing can happen — no arrival due, no job
// finishing, no rebalance horizon crossed, no admission possible — run a lean
// path that only integrates progress from per-job cached throughputs. The
// scheduling pass is skipped only when it is provably a no-op, so
// ScheduleMetrics are bit-identical between the two modes (bench_sched
// asserts this across all five policies).
#pragma once

#include <set>
#include <vector>

#include "baselines/adjustment_cost.h"
#include "common/flat_hash.h"
#include "sched/job.h"
#include "sched/metrics.h"
#include "train/throughput.h"

namespace elan::sched {

/// kElasticSrtf implements the paper's deferred future work ("a more
/// complicated scheduling policy"): elastic admission ordered by shortest
/// estimated remaining time, which trades a little fairness for mean JCT.
enum class PolicyKind { kFifo, kBackfill, kElasticFifo, kElasticBackfill, kElasticSrtf };

const char* to_string(PolicyKind policy);
bool is_elastic(PolicyKind policy);

struct ClusterParams {
  int total_gpus = 128;
  Seconds tick = 10.0;
  /// How often the elastic allocation rule re-runs (also runs on every
  /// arrival and completion).
  Seconds rebalance_interval = 300.0;
  /// Ignore marginal-gain reallocations that change a job by less than this
  /// many workers (hysteresis against thrash).
  int rebalance_hysteresis = 1;
  /// When set, jobs are bound to concrete GPUs (compact-first allocation)
  /// and their *measured* throughput follows the actual placement's
  /// communication bottleneck — fragmentation physically slows jobs. The
  /// default (off) is the paper's count-based simulator.
  bool placement_aware = false;
  /// When set (the default), uneventful ticks take the lean fast-forward
  /// path (see the file comment). Metrics are bit-identical either way;
  /// turn off to benchmark against the honest fixed-tick baseline.
  bool event_driven = true;
};

class ClusterSim {
 public:
  ClusterSim(const train::ThroughputModel& throughput,
             const baselines::AdjustmentCostModel& costs, PolicyKind policy,
             baselines::System system, ClusterParams params = {});

  /// Runs the trace to completion and returns the metrics.
  ScheduleMetrics run(const std::vector<SchedJobSpec>& trace);

 private:
  const train::ThroughputModel* throughput_;
  const baselines::AdjustmentCostModel* costs_;
  PolicyKind policy_;
  baselines::System system_;
  ClusterParams params_;

  // Run state.
  Seconds now_ = 0;
  std::vector<SchedJob> jobs_;
  std::vector<int> queue_;    // pending job indices in submit order
  std::vector<int> running_;  // running job indices
  int free_gpus_ = 0;
  std::set<topo::GpuId> free_gpu_set_;  // placement-aware mode only
  ScheduleMetrics metrics_;
  Seconds next_rebalance_ = 0;
  bool rebalance_requested_ = false;

  // Per-job measured-throughput memo for the event-driven lean path. A
  // job's measured throughput is constant within one phase of its
  // adjustment timeline (pre-window / paused / steady), so the cached value
  // is bit-identical to a fresh computation until the phase flips or the
  // allocation changes (start_job / apply_allocation invalidate).
  struct JobTput {
    double tput = 0.0;
    int phase = -1;  // 0 pre-window, 1 paused, 2 steady; -1 invalid
  };
  mutable std::vector<JobTput> job_tput_;

  // Throughput-model lookups dominate the simulation loop; configurations
  // repeat constantly, so memoise them. Keys are the configuration packed
  // into 64-bit integers (see pack_tput_key / pack_batch_key in the .cpp) —
  // the flat open-addressed maps make a hit one or two cache lines instead
  // of a red-black-tree walk.
  mutable FlatMap64<double> tput_cache_;
  mutable FlatMap64<int> batch_cache_;

  void admit_arrivals(const std::vector<SchedJobSpec>& trace, std::size_t& next_arrival);
  bool progress_running();
  void schedule_static();
  void schedule_elastic();
  bool scheduling_is_noop() const;
  void rebalance();
  void start_job(int index, int workers);
  void finish_job(int index);
  void apply_allocation(SchedJob& job, int new_workers);

  // Placement-aware mode helpers.
  std::vector<topo::GpuId> take_gpus(int count, const std::vector<topo::GpuId>& near);
  void release_gpus(SchedJob& job, int count);
  double measured_throughput(const SchedJob& job) const;
  double measured_throughput_cached(int index);

  double job_throughput(const SchedJob& job, int workers) const;
  int hybrid_batch(const SchedJob& job, int workers) const;
  Seconds estimated_remaining(const SchedJob& job, int workers) const;
  bool all_done() const;
};

}  // namespace elan::sched
