// Synthetic production-trace generator.
//
// The paper replays a down-sampled two-day trace from a Sensetime DL training
// cluster (Fig 1 shows its utilisation shape) on a 128-GPU simulator, with a
// model configuration drawn from Table I per job. That trace is proprietary;
// this generator produces a statistically similar one: a diurnal
// (sinusoidally modulated) Poisson arrival process, a small-job-heavy size
// distribution, log-normal durations, and min/max resource bounds derived
// the way the paper describes (min fits GPU memory, max keeps convergence).
#pragma once

#include <vector>

#include "common/rng.h"
#include "sched/job.h"
#include "train/throughput.h"

namespace elan::sched {

struct TraceParams {
  Seconds span = hours(48.0);
  /// Mean arrivals per hour at the daily peak and trough. Defaults offer
  /// ~75% of cluster capacity on average, so peaks overload (queues build)
  /// and troughs drain — the Fig 1 utilisation pattern.
  double peak_jobs_per_hour = 22.0;
  double trough_jobs_per_hour = 10.0;
  /// Log-normal duration (of the job running alone on req_res workers).
  double duration_median = minutes(60.0);
  double duration_sigma = 1.0;
  Seconds duration_cap = hours(10.0);
  int per_worker_batch = 32;
  /// Arrival-rate multiplier applied to both the peak and trough rates —
  /// the production-scale knob. 1.0 reproduces the paper's ~770-job
  /// two-day trace exactly (rates multiply by exactly 1.0, so existing
  /// seeds are bit-stable); ~6.5 yields a 5k-job trace with the same
  /// diurnal shape.
  double load = 1.0;
  std::uint64_t seed = 2020;
};

/// TraceParams whose load is tuned so generate() yields approximately
/// `target_jobs` jobs over the default 48-hour span — the 5k+-job
/// production-scale traces bench_sched replays.
TraceParams production_trace_params(int target_jobs, std::uint64_t seed = 2020);

class TraceGenerator {
 public:
  TraceGenerator(const train::ThroughputModel& throughput, TraceParams params = {});

  /// Generates the job list, sorted by submit time.
  std::vector<SchedJobSpec> generate() const;

 private:
  const train::ThroughputModel* throughput_;
  TraceParams params_;

  SchedJobSpec make_job(int id, Seconds submit, Rng& rng) const;
};

}  // namespace elan::sched
