#include "sched/metrics.h"

namespace elan::sched {

double ScheduleMetrics::average_utilization() const {
  if (utilization.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : utilization) sum += s.utilization;
  return sum / static_cast<double>(utilization.size());
}

}  // namespace elan::sched
