#include "sched/metrics.h"

#include <cmath>
#include <vector>

#include "obs/metrics.h"

namespace elan::sched {

double ScheduleMetrics::average_utilization() const {
  if (utilization.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : utilization) sum += s.utilization;
  return sum / static_cast<double>(utilization.size());
}

namespace {

// Bucket-interpolated quantile over sqrt(2)-log-spaced bounds from 1 second
// to ~16 days — wide enough that a 48-hour trace's worst-queued job never
// clamps into the +Inf bucket.
double histogram_quantile(const Stats& stats, double q) {
  if (stats.count() == 0) return std::nan("");
  std::vector<double> bounds;
  double bound = 1.0;
  for (int i = 0; i < 42; ++i) {
    bounds.push_back(bound);
    bound *= std::sqrt(2.0);
  }
  obs::Histogram hist(std::move(bounds));
  for (double v : stats.values()) hist.observe(v);
  return hist.snapshot().quantile(q);
}

}  // namespace

double ScheduleMetrics::pending_time_quantile(double q) const {
  return histogram_quantile(pending_time, q);
}

double ScheduleMetrics::completion_time_quantile(double q) const {
  return histogram_quantile(completion_time, q);
}

}  // namespace elan::sched
