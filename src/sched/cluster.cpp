#include "sched/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>

#include "common/error.h"
#include "elan/hybrid_scaling.h"
#include "sim/indexed_heap.h"

namespace elan::sched {

namespace {

// Memo-cache keys: the looked-up configuration packed into one 64-bit
// integer. The packing must be injective — the ELAN_CHECKs pin each field to
// its bit budget (any realistic trace is orders of magnitude below them).
std::uint64_t pack_tput_key(int kind, int workers, int tbs) {
  ELAN_CHECK(kind >= 0 && kind < (1 << 8), "tput key: model kind out of range");
  ELAN_CHECK(workers >= 0 && workers < (1 << 16), "tput key: workers out of range");
  ELAN_CHECK(tbs >= 0 && tbs < (1 << 24), "tput key: batch out of range");
  return (static_cast<std::uint64_t>(kind) << 40) |
         (static_cast<std::uint64_t>(workers) << 24) | static_cast<std::uint64_t>(tbs);
}

std::uint64_t pack_batch_key(int kind, int req, int base, int workers) {
  ELAN_CHECK(kind >= 0 && kind < (1 << 8), "batch key: model kind out of range");
  ELAN_CHECK(req >= 0 && req < (1 << 12), "batch key: req_res out of range");
  ELAN_CHECK(base >= 0 && base < (1 << 20), "batch key: base batch out of range");
  ELAN_CHECK(workers >= 0 && workers < (1 << 16), "batch key: workers out of range");
  return (static_cast<std::uint64_t>(kind) << 48) |
         (static_cast<std::uint64_t>(req) << 36) |
         (static_cast<std::uint64_t>(base) << 16) | static_cast<std::uint64_t>(workers);
}

}  // namespace

const char* to_string(PolicyKind policy) {
  switch (policy) {
    case PolicyKind::kFifo: return "FIFO";
    case PolicyKind::kBackfill: return "BF";
    case PolicyKind::kElasticFifo: return "E-FIFO";
    case PolicyKind::kElasticBackfill: return "E-BF";
    case PolicyKind::kElasticSrtf: return "E-SRTF";
  }
  return "?";
}

bool is_elastic(PolicyKind policy) {
  return policy == PolicyKind::kElasticFifo || policy == PolicyKind::kElasticBackfill ||
         policy == PolicyKind::kElasticSrtf;
}

ClusterSim::ClusterSim(const train::ThroughputModel& throughput,
                       const baselines::AdjustmentCostModel& costs, PolicyKind policy,
                       baselines::System system, ClusterParams params)
    : throughput_(&throughput),
      costs_(&costs),
      policy_(policy),
      system_(system),
      params_(params) {
  require(params_.total_gpus > 0, "cluster: total_gpus must be positive");
  require(params_.tick > 0, "cluster: tick must be positive");
}

int ClusterSim::hybrid_batch(const SchedJob& job, int workers) const {
  const std::uint64_t key =
      pack_batch_key(static_cast<int>(job.spec.model.kind), job.spec.req_res,
                     job.spec.base_total_batch, workers);
  if (const int* hit = batch_cache_.find(key)) return *hit;
  const HybridScaling hybrid(*throughput_, job.spec.model);
  // Decide relative to the job's tuned configuration so the batch size is a
  // pure function of the worker count (keeps reallocation estimates stable).
  const int tbs =
      hybrid.decide(job.spec.req_res, job.spec.base_total_batch, workers).total_batch;
  batch_cache_.insert(key, tbs);
  return tbs;
}

double ClusterSim::job_throughput(const SchedJob& job, int workers) const {
  const int tbs = hybrid_batch(job, workers);
  const std::uint64_t key =
      pack_tput_key(static_cast<int>(job.spec.model.kind), workers, tbs);
  if (const double* hit = tput_cache_.find(key)) return *hit;
  double tput = throughput_->throughput(job.spec.model, workers, tbs);
  tput *= 1.0 - costs_->runtime_overhead(system_, job.spec.model, workers, tbs);
  tput_cache_.insert(key, tput);
  return tput;
}

Seconds ClusterSim::estimated_remaining(const SchedJob& job, int workers) const {
  const double tput = job_throughput(job, workers);
  if (tput <= 0) return std::numeric_limits<double>::infinity();
  return job.remaining_samples / tput;
}

std::vector<topo::GpuId> ClusterSim::take_gpus(int count,
                                               const std::vector<topo::GpuId>& near) {
  ELAN_CHECK(static_cast<int>(free_gpu_set_.size()) >= count, "take_gpus: pool exhausted");
  const auto& topology = throughput_->topology();
  // Prefer nodes the job already occupies, then the fullest free nodes
  // (compact-first), taking whole-node runs where possible.
  std::map<int, int> affinity;
  for (auto g : near) ++affinity[topology.node_of(g)];
  std::map<int, std::vector<topo::GpuId>> by_node;
  for (auto g : free_gpu_set_) by_node[topology.node_of(g)].push_back(g);
  std::vector<std::pair<int, std::vector<topo::GpuId>>> nodes(by_node.begin(),
                                                              by_node.end());
  std::sort(nodes.begin(), nodes.end(), [&](const auto& a, const auto& b) {
    const int aa = affinity.count(a.first) ? affinity.at(a.first) : 0;
    const int ab = affinity.count(b.first) ? affinity.at(b.first) : 0;
    if (aa != ab) return aa > ab;
    if (a.second.size() != b.second.size()) return a.second.size() > b.second.size();
    return a.first < b.first;
  });
  std::vector<topo::GpuId> out;
  for (const auto& [node, gpus] : nodes) {
    for (auto g : gpus) {
      if (static_cast<int>(out.size()) == count) break;
      out.push_back(g);
      free_gpu_set_.erase(g);
    }
    if (static_cast<int>(out.size()) == count) break;
  }
  return out;
}

void ClusterSim::release_gpus(SchedJob& job, int count) {
  // Release from the job's least-populated nodes first so the remainder
  // stays compact.
  const auto& topology = throughput_->topology();
  std::map<int, int> population;
  for (auto g : job.gpus) ++population[topology.node_of(g)];
  std::stable_sort(job.gpus.begin(), job.gpus.end(), [&](topo::GpuId a, topo::GpuId b) {
    return population.at(topology.node_of(a)) > population.at(topology.node_of(b));
  });
  for (int i = 0; i < count; ++i) {
    ELAN_CHECK(!job.gpus.empty(), "release_gpus: nothing to release");
    free_gpu_set_.insert(job.gpus.back());
    job.gpus.pop_back();
  }
}

double ClusterSim::measured_throughput(const SchedJob& job) const {
  if (!params_.placement_aware) return job_throughput(job, job.effective_workers(now_));
  // The job's real placement sets the communication bottleneck. During an
  // adjustment's start window the previous width applies; approximate the
  // previous placement by the first prev_workers GPUs of the current set.
  std::vector<topo::GpuId> members = job.gpus;
  const int eff = job.effective_workers(now_);
  if (static_cast<int>(members.size()) > eff && eff > 0) {
    members.resize(static_cast<std::size_t>(eff));
  }
  const int tbs = job.effective_batch(now_);
  double tput = throughput_->throughput_on(job.spec.model, members, tbs);
  tput *= 1.0 - costs_->runtime_overhead(system_, job.spec.model,
                                         static_cast<int>(members.size()), tbs);
  return tput;
}

double ClusterSim::measured_throughput_cached(int index) {
  const SchedJob& job = jobs_[static_cast<std::size_t>(index)];
  // The measured throughput is a pure function of the adjustment-timeline
  // phase now_ falls in: the allocation, batch, and placement are all
  // constant between allocation changes (which invalidate the cache).
  const int phase = now_ < job.pause_start ? 0 : (now_ < job.paused_until ? 1 : 2);
  JobTput& cached = job_tput_[static_cast<std::size_t>(index)];
  if (cached.phase != phase) {
    cached.tput = measured_throughput(job);
    cached.phase = phase;
  }
  return cached.tput;
}

void ClusterSim::start_job(int index, int workers) {
  SchedJob& job = jobs_[static_cast<std::size_t>(index)];
  ELAN_CHECK(job.status == JobStatus::kPending, "start_job: not pending");
  ELAN_CHECK(workers <= free_gpus_, "start_job: not enough free GPUs");
  job.status = JobStatus::kRunning;
  job.workers = workers;
  job.total_batch = hybrid_batch(job, workers);
  job.start_time = now_;
  free_gpus_ -= workers;
  if (params_.placement_aware) job.gpus = take_gpus(workers, {});
  job_tput_[static_cast<std::size_t>(index)].phase = -1;
  running_.push_back(index);
  metrics_.pending_time.add(job.pending_time());
}

void ClusterSim::finish_job(int index) {
  SchedJob& job = jobs_[static_cast<std::size_t>(index)];
  job.status = JobStatus::kFinished;
  job.finish_time = now_;
  free_gpus_ += job.workers;
  if (params_.placement_aware) {
    for (auto g : job.gpus) free_gpu_set_.insert(g);
    job.gpus.clear();
  }
  job.workers = 0;
  running_.erase(std::find(running_.begin(), running_.end(), index));
  metrics_.completion_time.add(job.completion_time());
  ++metrics_.jobs_finished;
  metrics_.makespan = std::max(metrics_.makespan, now_);
  rebalance_requested_ = true;  // freed resources: re-run the allocation rule
}

void ClusterSim::apply_allocation(SchedJob& job, int new_workers) {
  if (new_workers == job.workers) return;
  const auto type = new_workers > job.workers ? AdjustmentType::kScaleOut
                                              : AdjustmentType::kScaleIn;
  const Seconds pause = costs_->pause_time(system_, type, job.spec.model, job.workers,
                                           new_workers);
  // Scale-out cannot take effect before the new workers have spawned and
  // initialised, but under both Elan and S&R they do that *asynchronously*:
  // the job keeps training on its old workers during the window and only
  // pauses for the mechanism's own critical path afterwards.
  const Seconds start_window =
      type == AdjustmentType::kScaleOut && system_ != baselines::System::kIdeal
          ? costs_->new_worker_ready_time()
          : 0.0;
  job.prev_workers = job.effective_workers(now_);
  job.prev_total_batch = job.effective_batch(now_);
  job.pause_start = now_ + start_window;
  job.paused_until = now_ + start_window + pause;
  free_gpus_ += job.workers - new_workers;
  if (params_.placement_aware) {
    if (new_workers > job.workers) {
      const auto added = take_gpus(new_workers - job.workers, job.gpus);
      job.gpus.insert(job.gpus.end(), added.begin(), added.end());
    } else {
      release_gpus(job, job.workers - new_workers);
    }
  }
  job.workers = new_workers;
  job.total_batch = hybrid_batch(job, new_workers);
  job_tput_[static_cast<std::size_t>(&job - jobs_.data())].phase = -1;
  ++job.adjustments;
  ++metrics_.total_adjustments;
}

bool ClusterSim::progress_running() {
  std::vector<int> finished;
  if (params_.event_driven) {
    for (int index : running_) {
      SchedJob& job = jobs_[static_cast<std::size_t>(index)];
      if (job.paused(now_)) continue;
      job.remaining_samples -= measured_throughput_cached(index) * params_.tick;
      if (job.remaining_samples <= 0) finished.push_back(index);
    }
  } else {
    for (int index : running_) {
      SchedJob& job = jobs_[static_cast<std::size_t>(index)];
      if (job.paused(now_)) continue;
      job.remaining_samples -= measured_throughput(job) * params_.tick;
      if (job.remaining_samples <= 0) finished.push_back(index);
    }
  }
  for (int index : finished) finish_job(index);
  return !finished.empty();
}

void ClusterSim::schedule_static() {
  // FIFO head-of-queue starts.
  while (!queue_.empty()) {
    const SchedJob& head = jobs_[static_cast<std::size_t>(queue_.front())];
    if (head.spec.req_res > free_gpus_) break;
    start_job(queue_.front(), head.spec.req_res);
    queue_.erase(queue_.begin());
  }
  if (policy_ != PolicyKind::kBackfill || queue_.empty() || free_gpus_ == 0) return;

  // EASY backfill: reserve a start time for the head, then let later jobs
  // run now if they fit and finish before the reservation.
  const SchedJob& head = jobs_[static_cast<std::size_t>(queue_.front())];
  std::vector<std::pair<Seconds, int>> releases;  // (finish estimate, workers)
  for (int index : running_) {
    const SchedJob& job = jobs_[static_cast<std::size_t>(index)];
    releases.emplace_back(now_ + estimated_remaining(job, job.workers), job.workers);
  }
  std::sort(releases.begin(), releases.end());
  int avail = free_gpus_;
  Seconds shadow_time = std::numeric_limits<double>::infinity();
  for (const auto& [when, workers] : releases) {
    avail += workers;
    if (avail >= head.spec.req_res) {
      shadow_time = when;
      break;
    }
  }

  for (auto it = queue_.begin() + 1; it != queue_.end() && free_gpus_ > 0;) {
    const SchedJob& job = jobs_[static_cast<std::size_t>(*it)];
    const bool fits = job.spec.req_res <= free_gpus_;
    const bool harmless =
        now_ + estimated_remaining(job, job.spec.req_res) <= shadow_time;
    if (fits && harmless) {
      start_job(*it, job.spec.req_res);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void ClusterSim::schedule_elastic() {
  // Admission rule: a job can start once min_res GPUs are free. E-FIFO
  // admits strictly in order; E-BF lets any queued job slip in; E-SRTF
  // admits the shortest-estimated job first (the paper's future-work
  // "more complicated policy").
  if (policy_ == PolicyKind::kElasticSrtf) {
    std::stable_sort(queue_.begin(), queue_.end(), [&](int a, int b) {
      const auto& ja = jobs_[static_cast<std::size_t>(a)];
      const auto& jb = jobs_[static_cast<std::size_t>(b)];
      return estimated_remaining(ja, ja.spec.req_res) <
             estimated_remaining(jb, jb.spec.req_res);
    });
  }
  bool admitted = false;
  for (auto it = queue_.begin(); it != queue_.end();) {
    const SchedJob& job = jobs_[static_cast<std::size_t>(*it)];
    if (job.spec.min_res <= free_gpus_) {
      start_job(*it, job.spec.min_res);
      it = queue_.erase(it);
      admitted = true;
    } else if (policy_ == PolicyKind::kElasticFifo) {
      break;  // strict ordering
    } else {
      ++it;  // backfill/SRTF flavours keep scanning
    }
  }
  if (admitted || rebalance_requested_ || now_ >= next_rebalance_) {
    rebalance();
    rebalance_requested_ = false;
    next_rebalance_ = now_ + params_.rebalance_interval;
  }
}

bool ClusterSim::scheduling_is_noop() const {
  // True only when the scheduling pass at now_ is provably a no-op, so the
  // event-driven loop may skip it without perturbing a single decision.
  if (is_elastic(policy_)) {
    if (rebalance_requested_ || now_ >= next_rebalance_) return false;
    if (queue_.empty()) return true;
    if (free_gpus_ <= 0) return true;  // min_res >= 1: nothing can be admitted
    if (policy_ == PolicyKind::kElasticFifo) {
      // Strict ordering: the scan stops at the head either way.
      return jobs_[static_cast<std::size_t>(queue_.front())].spec.min_res > free_gpus_;
    }
    // E-BF / E-SRTF scan the whole queue. (E-SRTF's admission re-sort is
    // idempotent while nothing is admitted: a pending job's estimated
    // remaining time never changes.)
    for (int index : queue_) {
      if (jobs_[static_cast<std::size_t>(index)].spec.min_res <= free_gpus_) return false;
    }
    return true;
  }
  if (queue_.empty()) return true;
  if (policy_ == PolicyKind::kFifo) {
    return jobs_[static_cast<std::size_t>(queue_.front())].spec.req_res > free_gpus_;
  }
  // Backfill: the shadow-time condition is time-dependent; conservatively
  // run the full pass whenever GPUs are free and jobs wait.
  return free_gpus_ == 0;
}

void ClusterSim::rebalance() {
  if (running_.empty()) return;
  // Allocation rule (paper §VI-C): give each job min_res, then repeatedly
  // add one worker to the job with the greatest marginal gain (estimated
  // JCT reduction per added worker, as in Optimus) until GPUs run out, every
  // job hits max_res, or no gain is positive.
  int budget = params_.total_gpus;
  const std::size_t n = running_.size();
  std::vector<int> target(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const SchedJob& job = jobs_[static_cast<std::size_t>(running_[pos])];
    target[pos] = job.spec.min_res;
    budget -= job.spec.min_res;
  }
  ELAN_CHECK(budget >= 0, "rebalance: min allocations exceed cluster");

  // Incremental waterfilling: a max-heap of per-job marginal gains replaces
  // the historical O(budget x jobs) full rescan — only the job that just
  // received a worker changes gain, so only it is re-keyed. Tie-breaking
  // reproduces the rescan's strict `gain > best` first-wins scan: equal
  // gains resolve to the earliest job in running_ via the position
  // component. Non-finite NaN gains (0/0 estimates) are never pushed — the
  // rescan's `gain > 0` test rejected them too.
  struct GainKey {
    double gain;
    std::size_t pos;
  };
  struct GainBefore {
    bool operator()(const GainKey& a, const GainKey& b) const {
      if (a.gain != b.gain) return a.gain > b.gain;
      return a.pos < b.pos;
    }
  };
  const auto gain_at = [&](std::size_t pos) {
    const SchedJob& job = jobs_[static_cast<std::size_t>(running_[pos])];
    const int cur = target[pos];
    return estimated_remaining(job, cur) - estimated_remaining(job, cur + 1);
  };
  sim::IndexedHeap<GainKey, std::size_t, GainBefore> gains;
  gains.reserve(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const SchedJob& job = jobs_[static_cast<std::size_t>(running_[pos])];
    if (target[pos] >= job.spec.max_res) continue;
    const double gain = gain_at(pos);
    if (!std::isnan(gain)) gains.push(GainKey{gain, pos}, pos);
  }
  while (budget > 0 && !gains.empty()) {
    if (!(gains.top_priority().gain > 0.0)) break;
    const std::size_t pos = gains.pop();
    ++target[pos];
    --budget;
    const SchedJob& job = jobs_[static_cast<std::size_t>(running_[pos])];
    if (target[pos] >= job.spec.max_res) continue;
    const double gain = gain_at(pos);
    if (!std::isnan(gain)) gains.push(GainKey{gain, pos}, pos);
  }

  // Apply shrinks before grows: in placement-aware mode the grown jobs take
  // concrete GPUs from the pool the shrunk jobs just returned.
  for (const bool shrink_pass : {true, false}) {
    for (std::size_t pos = 0; pos < n; ++pos) {
      SchedJob& job = jobs_[static_cast<std::size_t>(running_[pos])];
      const int want = target[pos];
      if ((want < job.workers) != shrink_pass) continue;
      if (std::abs(want - job.workers) < std::max(1, params_.rebalance_hysteresis)) continue;
      apply_allocation(job, want);
    }
  }
}

void ClusterSim::admit_arrivals(const std::vector<SchedJobSpec>& trace,
                                std::size_t& next_arrival) {
  while (next_arrival < trace.size() && trace[next_arrival].submit_time <= now_) {
    queue_.push_back(static_cast<int>(next_arrival));
    ++next_arrival;
  }
}

bool ClusterSim::all_done() const {
  return queue_.empty() && running_.empty();
}

ScheduleMetrics ClusterSim::run(const std::vector<SchedJobSpec>& trace) {
  require(!trace.empty(), "cluster: empty trace");
  require(std::is_sorted(trace.begin(), trace.end(),
                         [](const SchedJobSpec& a, const SchedJobSpec& b) {
                           return a.submit_time < b.submit_time;
                         }),
          "cluster: trace must be sorted by submit time");

  now_ = 0;
  jobs_.clear();
  jobs_.reserve(trace.size());
  for (const auto& spec : trace) {
    SchedJob job;
    job.spec = spec;
    job.remaining_samples = static_cast<double>(spec.total_samples);
    jobs_.push_back(std::move(job));
  }
  queue_.clear();
  running_.clear();
  free_gpus_ = params_.total_gpus;
  free_gpu_set_.clear();
  if (params_.placement_aware) {
    require(params_.total_gpus <= throughput_->topology().total_gpus(),
            "cluster: placement-aware mode needs a topology covering total_gpus");
    for (topo::GpuId g = 0; g < params_.total_gpus; ++g) free_gpu_set_.insert(g);
  }
  metrics_ = ScheduleMetrics{};
  next_rebalance_ = 0;
  rebalance_requested_ = false;
  job_tput_.assign(jobs_.size(), JobTput{});

  // The clock always advances by exact `tick` increments (never t0 + i*tick
  // in one multiply — repeated addition keeps the sums bit-identical between
  // the event-driven and fixed-tick modes). Event-driven mode only elides
  // the scheduling pass on ticks where it is provably a no-op.
  std::size_t next_arrival = 0;
  while (next_arrival < trace.size() || !all_done()) {
    const bool arrivals_due =
        next_arrival < trace.size() && trace[next_arrival].submit_time <= now_;
    if (arrivals_due) admit_arrivals(trace, next_arrival);
    const bool finished_any = progress_running();
    const bool lean = params_.event_driven && !arrivals_due && !finished_any &&
                      scheduling_is_noop();
    if (!lean) {
      if (is_elastic(policy_)) {
        schedule_elastic();
      } else {
        schedule_static();
      }
    }
    const int busy = params_.total_gpus - free_gpus_;
    metrics_.utilization.push_back(
        {now_, static_cast<double>(busy) / params_.total_gpus});
    now_ += params_.tick;
  }
  return metrics_;
}

}  // namespace elan::sched
